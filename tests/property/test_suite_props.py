"""Property-based tests for the workload suite builder."""

from hypothesis import given, settings, strategies as st

from repro.workloads.suite import BENCHMARKS, get_profile
from repro.workloads.trace import validate_stream

bench_names = st.sampled_from(BENCHMARKS)
scales = st.floats(0.01, 0.1)
seeds = st.integers(0, 1000)


class TestBuildProperties:
    @settings(max_examples=15, deadline=None)
    @given(bench_names, seeds, scales)
    def test_streams_are_valid_traces(self, name, seed, scale):
        workload = get_profile(name).build(num_cores=2, refs_per_core=150,
                                           seed=seed, scale=scale)
        assert len(workload.streams) == 2
        for stream in workload.streams:
            validate_stream(stream)
            assert len(stream) >= 150

    @settings(max_examples=15, deadline=None)
    @given(bench_names, seeds)
    def test_build_is_deterministic(self, name, seed):
        profile = get_profile(name)
        a = profile.build(1, 100, seed=seed, scale=0.02)
        b = profile.build(1, 100, seed=seed, scale=0.02)
        assert list(a.streams[0]) == list(b.streams[0])
        assert a.warmup_by_core == b.warmup_by_core

    @settings(max_examples=15, deadline=None)
    @given(bench_names, seeds, scales)
    def test_warmup_counts_consistent(self, name, seed, scale):
        profile = get_profile(name)
        workload = profile.build(2, 100, seed=seed, scale=scale)
        assert (sum(workload.warmup_by_core.values())
                == workload.warmup_references)
        footprint = profile.footprint_pages(scale)
        for count in workload.warmup_by_core.values():
            assert count == footprint

    @settings(max_examples=15, deadline=None)
    @given(bench_names, seeds)
    def test_addresses_stay_in_region_space(self, name, seed):
        workload = get_profile(name).build(1, 200, seed=seed, scale=0.02)
        regions = len(get_profile(name).regions)
        for ref in workload.streams[0]:
            region = ref.vaddr >> 32
            assert 1 <= region <= regions + 1  # +1: ASLR offset spill

    @settings(max_examples=10, deadline=None)
    @given(bench_names)
    def test_multithreaded_streams_share_layout(self, name):
        profile = get_profile(name)
        workload = profile.build(3, 100, seed=1, scale=0.02)
        if profile.multithreaded:
            assert {s.asid for s in workload.streams} == {1}
        else:
            assert {s.asid for s in workload.streams} == {1, 2, 3}
