"""Property-based tests for address arithmetic."""

from hypothesis import given, strategies as st

from repro.common import addr

vaddrs = st.integers(min_value=0, max_value=(1 << 48) - 1)
sizes = st.booleans()


class TestPageDecomposition:
    @given(vaddrs, sizes)
    def test_base_plus_offset_reconstructs(self, va, large):
        assert addr.page_base(va, large) + addr.page_offset(va, large) == va

    @given(vaddrs, sizes)
    def test_offset_bounded(self, va, large):
        assert 0 <= addr.page_offset(va, large) < addr.page_size(large)

    @given(vaddrs, sizes)
    def test_vpn_consistent_with_base(self, va, large):
        assert addr.vpn(va, large) << addr.page_shift(large) == \
            addr.page_base(va, large)

    @given(vaddrs)
    def test_large_page_contains_its_small_pages(self, va):
        small = addr.vpn(va, large=False)
        large = addr.vpn(va, large=True)
        assert addr.large_vpn_of_small(small) == large
        first_small = addr.small_vpn_of_large(large)
        assert first_small <= small < first_small + addr.SMALL_PAGES_PER_LARGE


class TestRadixIndices:
    @given(vaddrs)
    def test_indices_reconstruct_page_bits(self, va):
        rebuilt = 0
        for level in range(1, 5):
            rebuilt |= addr.radix_index(va, level) << (12 + 9 * (level - 1))
        assert rebuilt == addr.page_base(va, large=False)

    @given(vaddrs)
    def test_indices_in_range(self, va):
        for level in range(1, 5):
            assert 0 <= addr.radix_index(va, level) < 512


class TestAlignment:
    @given(st.integers(min_value=0, max_value=1 << 50),
           st.integers(min_value=0, max_value=20))
    def test_align_up_properties(self, value, shift):
        alignment = 1 << shift
        aligned = addr.align_up(value, alignment)
        assert aligned >= value
        assert aligned % alignment == 0
        assert aligned - value < alignment

    @given(st.integers(min_value=0, max_value=1 << 60))
    def test_cache_line_consistency(self, address):
        base = addr.cache_line_base(address)
        assert base <= address < base + addr.CACHE_LINE_SIZE
        assert addr.cache_line(address) == base >> 6

    @given(st.integers(min_value=1, max_value=1 << 40))
    def test_ilog2_inverts_power(self, n):
        power = 1 << (n.bit_length() - 1)
        assert 1 << addr.ilog2(power) == power
