"""Property-based tests for SRAM TLB invariants."""

from hypothesis import given, settings, strategies as st

from repro.common.config import TlbConfig
from repro.common.stats import StatGroup
from repro.tlb.entry import TlbEntry, TlbKey
from repro.tlb.tlb import SramTlb


def make_tlb(entries=32, ways=4):
    cfg = TlbConfig(name="t", entries=entries, ways=ways, latency_cycles=1)
    return SramTlb(cfg, StatGroup("t"))


keys = st.builds(TlbKey,
                 vm_id=st.integers(0, 3),
                 asid=st.integers(0, 7),
                 vpn=st.integers(0, 1 << 24),
                 large=st.booleans())


class TestTlbInvariants:
    @settings(max_examples=50, deadline=None)
    @given(st.lists(keys, max_size=150))
    def test_capacity_bound(self, inserts):
        tlb = make_tlb()
        for key in inserts:
            tlb.insert(key.pack(), TlbEntry(ppn=key.vpn))
            assert len(tlb) <= tlb.config.entries

    @settings(max_examples=50, deadline=None)
    @given(st.lists(keys, max_size=100))
    def test_insert_then_immediate_lookup_hits(self, inserts):
        tlb = make_tlb()
        for key in inserts:
            tlb.insert(key.pack(), TlbEntry(ppn=key.vpn & 0xFFFF))
            entry = tlb.lookup(key.pack())
            assert entry is not None
            assert entry.ppn == key.vpn & 0xFFFF

    @settings(max_examples=50, deadline=None)
    @given(st.lists(keys, max_size=100))
    def test_eviction_conservation(self, inserts):
        """Every insert either grows the TLB or reports an eviction."""
        tlb = make_tlb()
        for key in inserts:
            size_before = len(tlb)
            already_there = tlb.contains(key.pack())
            evicted = tlb.insert(key.pack(), TlbEntry(1))
            if already_there:
                assert len(tlb) == size_before
            elif evicted is None:
                assert len(tlb) == size_before + 1
            else:
                assert len(tlb) == size_before
                assert not tlb.contains(evicted)

    @settings(max_examples=50, deadline=None)
    @given(st.lists(keys, max_size=60), st.integers(0, 3))
    def test_vm_invalidation_is_complete(self, inserts, vm):
        tlb = make_tlb()
        for key in inserts:
            tlb.insert(key.pack(), TlbEntry(1))
        tlb.invalidate_vm(vm)
        assert all(k.vm_id != vm for k in tlb.keys())

    @settings(max_examples=50, deadline=None)
    @given(st.lists(keys, max_size=60))
    def test_flush_empties(self, inserts):
        tlb = make_tlb()
        for key in inserts:
            tlb.insert(key.pack(), TlbEntry(1))
        tlb.flush()
        assert len(tlb) == 0
        assert all(tlb.lookup(k.pack()) is None for k in inserts)
