"""Property-based tests for the radix page table."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.common import addr
from repro.common.errors import AddressError
from repro.paging.page_table import RadixPageTable


def make_table():
    counter = itertools.count()
    return RadixPageTable(lambda: 1 << 40 | (next(counter) * 4096), name="t")


# Page-granular mappings: (large-page VPN, is-large).  Using 2 MiB
# regions as the unit guarantees generated mappings never conflict.
mappings = st.lists(
    st.tuples(st.integers(0, 1 << 20), st.booleans()),
    max_size=40, unique_by=lambda m: m[0])


class TestMappingProperties:
    @settings(max_examples=40, deadline=None)
    @given(mappings, st.data())
    def test_walk_translates_what_was_mapped(self, regions, data):
        table = make_table()
        frames = {}
        for index, (region, large) in enumerate(regions):
            va = region << addr.LARGE_PAGE_SHIFT
            frame = (index + 1) << addr.LARGE_PAGE_SHIFT
            table.map_page(va, frame, large=large)
            frames[(region, large)] = frame
        for (region, large), frame in frames.items():
            offset = data.draw(st.integers(0, addr.page_size(large) - 1))
            va = (region << addr.LARGE_PAGE_SHIFT) + offset
            steps, leaf = table.walk(va)
            if large:
                assert leaf.translate(va) == frame + offset
                assert len(steps) == 3
            else:
                # Small page mapped at the region's first 4 KiB only.
                if offset < addr.SMALL_PAGE_SIZE:
                    assert leaf.translate(va) == frame + offset
                    assert len(steps) == 4

    @settings(max_examples=40, deadline=None)
    @given(mappings)
    def test_lookup_agrees_with_walk(self, regions):
        table = make_table()
        for index, (region, large) in enumerate(regions):
            va = region << addr.LARGE_PAGE_SHIFT
            table.map_page(va, (index + 1) << addr.LARGE_PAGE_SHIFT,
                           large=large)
        for region, large in regions:
            va = region << addr.LARGE_PAGE_SHIFT
            _steps, leaf = table.walk(va)
            assert table.lookup(va) == leaf

    @settings(max_examples=40, deadline=None)
    @given(mappings)
    def test_unmap_restores_absence(self, regions):
        table = make_table()
        for index, (region, large) in enumerate(regions):
            va = region << addr.LARGE_PAGE_SHIFT
            table.map_page(va, (index + 1) << addr.LARGE_PAGE_SHIFT,
                           large=large)
        for region, large in regions:
            va = region << addr.LARGE_PAGE_SHIFT
            assert table.unmap_page(va, large=large)
            assert table.lookup(va) is None
        assert table.mapped_pages == (0, 0)

    @settings(max_examples=40, deadline=None)
    @given(mappings)
    def test_mapped_pages_counts(self, regions):
        table = make_table()
        for index, (region, large) in enumerate(regions):
            table.map_page(region << addr.LARGE_PAGE_SHIFT,
                           (index + 1) << addr.LARGE_PAGE_SHIFT, large=large)
        small, large_count = table.mapped_pages
        assert small == sum(1 for _r, lg in regions if not lg)
        assert large_count == sum(1 for _r, lg in regions if lg)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(0, 1 << 20))
    def test_pte_addresses_are_unique_per_walk(self, region):
        table = make_table()
        va = region << addr.LARGE_PAGE_SHIFT
        table.map_page(va, 1 << addr.LARGE_PAGE_SHIFT)
        steps, _ = table.walk(va)
        pte_addrs = [s.pte_paddr for s in steps]
        assert len(set(pte_addrs)) == len(pte_addrs)
