"""Property-based tests for the DRAM model."""

from hypothesis import given, settings, strategies as st

from repro.common.config import stacked_dram_timing
from repro.common.stats import StatGroup
from repro.dram.channel import DramChannel
from repro.dram.mapping import AddressMapper

paddrs = st.integers(min_value=0, max_value=(1 << 40) - 1)


class TestMappingProperties:
    @settings(max_examples=80, deadline=None)
    @given(paddrs)
    def test_coordinates_in_range(self, paddr):
        mapper = AddressMapper(stacked_dram_timing())
        coord = mapper.map(paddr)
        assert 0 <= coord.bank < 16
        assert 0 <= coord.column < 2048
        assert coord.row >= 0

    @settings(max_examples=80, deadline=None)
    @given(paddrs)
    def test_mapping_is_invertible(self, paddr):
        timing = stacked_dram_timing()
        mapper = AddressMapper(timing)
        coord = mapper.map(paddr)
        rebuilt = ((coord.row * timing.banks + coord.bank)
                   * timing.row_buffer_bytes + coord.column)
        assert rebuilt == paddr

    @settings(max_examples=60, deadline=None)
    @given(paddrs, st.integers(0, 2047))
    def test_same_row_within_row_buffer(self, paddr, offset):
        mapper = AddressMapper(stacked_dram_timing())
        row_base = paddr & ~2047
        assert mapper.same_row(row_base, row_base + offset)


class TestChannelProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(paddrs, min_size=1, max_size=60))
    def test_latency_is_one_of_three_classes(self, accesses):
        timing = stacked_dram_timing()
        channel = DramChannel(timing, 4000, StatGroup("d"))
        burst = 2  # 64B over a 32B/cycle DDR bus
        classes = {
            timing.cpu_cycles(timing.controller_cycles + timing.tcas + burst, 4000),
            timing.cpu_cycles(timing.controller_cycles + timing.trcd
                              + timing.tcas + burst, 4000),
            timing.cpu_cycles(timing.controller_cycles + timing.trp
                              + timing.trcd + timing.tcas + burst, 4000),
        }
        for paddr in accesses:
            assert channel.access(paddr) in classes

    @settings(max_examples=30, deadline=None)
    @given(st.lists(paddrs, min_size=1, max_size=60))
    def test_stat_conservation(self, accesses):
        channel = DramChannel(stacked_dram_timing(), 4000, StatGroup("d"))
        for paddr in accesses:
            channel.access(paddr)
        stats = channel.stats
        assert (stats["row_hits"] + stats["row_misses"]
                + stats["row_conflicts"]) == stats["accesses"] == len(accesses)

    @settings(max_examples=20, deadline=None)
    @given(st.lists(paddrs, min_size=2, max_size=40))
    def test_repeating_the_last_access_is_a_row_hit(self, accesses):
        timing = stacked_dram_timing()
        channel = DramChannel(timing, 4000, StatGroup("d"))
        for paddr in accesses:
            channel.access(paddr)
        hits_before = channel.stats["row_hits"]
        channel.access(accesses[-1])
        assert channel.stats["row_hits"] == hits_before + 1
