"""Property-based tests for the command-level DRAM scheduler."""

from hypothesis import given, settings, strategies as st

from repro.common.config import stacked_dram_timing
from repro.dram.scheduler import CommandScheduler, Request

request_specs = st.lists(
    st.tuples(st.integers(0, 1 << 24),   # paddr
              st.integers(0, 5000),      # arrival
              st.booleans()),            # is_write
    min_size=1, max_size=60)


class TestSchedulerInvariants:
    @settings(max_examples=40, deadline=None)
    @given(request_specs)
    def test_every_request_completes_after_arrival(self, specs):
        sched = CommandScheduler(stacked_dram_timing())
        requests = [Request(paddr=p, arrival=a, is_write=w)
                    for p, a, w in specs]
        sched.run(requests)
        timing = stacked_dram_timing()
        for request in requests:
            assert request.completion > request.arrival
            # Nothing beats a bare row-hit read.
            assert request.latency >= 1

    @settings(max_examples=40, deadline=None)
    @given(request_specs)
    def test_bus_never_double_booked(self, specs):
        sched = CommandScheduler(stacked_dram_timing())
        requests = [Request(paddr=p, arrival=a, is_write=w)
                    for p, a, w in specs]
        sched.run(requests)
        burst = sched._burst
        completions = sorted(r.completion for r in requests)
        for earlier, later in zip(completions, completions[1:]):
            assert later - earlier >= burst

    @settings(max_examples=40, deadline=None)
    @given(request_specs)
    def test_stat_conservation(self, specs):
        sched = CommandScheduler(stacked_dram_timing())
        requests = [Request(paddr=p, arrival=a, is_write=w)
                    for p, a, w in specs]
        sched.run(requests)
        assert sched.stats["serviced"] == len(requests)
        assert (sched.stats["reads"] + sched.stats["writes"]
                == len(requests))

    @settings(max_examples=25, deadline=None)
    @given(request_specs)
    def test_deterministic(self, specs):
        def run_once():
            sched = CommandScheduler(stacked_dram_timing())
            requests = [Request(paddr=p, arrival=a, is_write=w)
                        for p, a, w in specs]
            sched.run(requests)
            return [r.completion for r in requests]
        assert run_once() == run_once()
