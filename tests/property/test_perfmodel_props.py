"""Property-based tests for the Eq. 2-5 performance model."""

from hypothesis import assume, given, settings, strategies as st

from repro.core.perfmodel import BaselineAnchor, estimate, geometric_mean

anchors = st.builds(BaselineAnchor,
                    overhead_pct=st.floats(0.01, 50.0),
                    cycles_per_l2_miss=st.floats(1.0, 2000.0))
misses = st.integers(1, 10 ** 7)
penalties = st.floats(0, 10 ** 10)


class TestEstimateProperties:
    @settings(max_examples=100, deadline=None)
    @given(anchors, misses, penalties)
    def test_cycles_accounting_consistent(self, anchor, m, penalty):
        est = estimate(anchor, m, penalty)
        if est.baseline_penalty:
            total = est.ideal_cycles + est.baseline_penalty
            assert abs(total - est.baseline_cycles) <= 1e-9 * est.baseline_cycles
        assert est.scheme_cycles >= est.ideal_cycles

    @settings(max_examples=100, deadline=None)
    @given(anchors, misses, penalties)
    def test_speedup_sign_matches_penalty_comparison(self, anchor, m, penalty):
        est = estimate(anchor, m, penalty)
        if penalty < est.baseline_penalty:
            assert est.speedup > 1
        elif penalty > est.baseline_penalty:
            assert est.speedup < 1

    @settings(max_examples=100, deadline=None)
    @given(anchors, misses, penalties, penalties)
    def test_monotone_in_scheme_penalty(self, anchor, m, p1, p2):
        assume(p1 < p2)
        better = estimate(anchor, m, p1)
        worse = estimate(anchor, m, p2)
        assert better.improvement_percent >= worse.improvement_percent

    @settings(max_examples=100, deadline=None)
    @given(anchors, misses)
    def test_zero_penalty_recovers_exactly_the_overhead(self, anchor, m):
        est = estimate(anchor, m, 0)
        frac = anchor.overhead_pct / 100.0
        expected = (1.0 / (1.0 - frac) - 1.0) * 100.0
        assert abs(est.improvement_percent - expected) < 1e-6

    @settings(max_examples=100, deadline=None)
    @given(anchors, misses, penalties)
    def test_improvement_bounded_below(self, anchor, m, penalty):
        est = estimate(anchor, m, penalty)
        assert est.improvement_percent > -100.0


class TestGeometricMeanProperties:
    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20))
    def test_between_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @settings(max_examples=80, deadline=None)
    @given(st.floats(0.1, 10.0), st.integers(1, 10))
    def test_constant_list(self, value, n):
        assert abs(geometric_mean([value] * n) - value) < 1e-9
