"""The documented top-level API surface stays importable and coherent."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_surface(self):
        # The README quickstart's imports, end to end.
        from repro import BENCHMARKS, Machine, SystemConfig, estimate, get_profile

        assert len(BENCHMARKS) == 15
        profile = get_profile("mcf")
        machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                          thp_large_fraction=profile.thp_large_fraction)
        workload = profile.build(num_cores=1, refs_per_core=100,
                                 seed=1, scale=0.02)
        result = machine.run(workload.streams,
                             warmup_references=workload.warmup_by_core)
        perf = estimate(profile.anchor(), result.l2_tlb_misses,
                        result.penalty_cycles)
        assert perf.speedup > 0

    def test_scheme_registry_names(self):
        from repro.core import SCHEMES
        assert set(SCHEMES) == {"baseline", "pom", "pom_skewed",
                                "shared_l2", "tsb"}
