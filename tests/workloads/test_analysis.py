"""Unit tests for the trace-analysis toolkit."""

import pytest

from repro.common import addr
from repro.workloads.analysis import (
    estimate_tlb_miss_rate,
    page_popularity,
    region_breakdown,
    reuse_distance_histogram,
    summarize,
)
from repro.workloads.trace import CoreStream, MemoryReference


def stream_of(pages, writes=None):
    refs = []
    for i, page in enumerate(pages):
        refs.append(MemoryReference(
            (i + 1) * 10, page * addr.SMALL_PAGE_SIZE,
            bool(writes and i in writes)))
    return CoreStream(core=0, vm_id=0, asid=1, references=refs)


class TestSummarize:
    def test_footprint(self):
        summary = summarize(stream_of([0, 1, 2, 1, 0]))
        assert summary.footprint_pages == 3
        assert summary.footprint_bytes == 3 * 4096
        assert summary.references == 5

    def test_write_fraction(self):
        summary = summarize(stream_of([0, 1, 2, 3], writes={0, 1}))
        assert summary.write_fraction == 0.5

    def test_refs_per_page_touch(self):
        # Pages 0,0,0,1: two page touches over four refs.
        summary = summarize(stream_of([0, 0, 0, 1]))
        assert summary.refs_per_page_touch == 2.0

    def test_memory_intensity(self):
        summary = summarize(stream_of([0, 1]))
        assert summary.memory_intensity == pytest.approx(2 / 20)

    def test_empty_stream(self):
        summary = summarize(CoreStream(0, 0, 1))
        assert summary.references == 0
        assert summary.write_fraction == 0.0
        assert summary.memory_intensity == 0.0


class TestPagePopularity:
    def test_top_pages(self):
        top = page_popularity(stream_of([5, 5, 5, 7, 7, 9]), top=2)
        assert top == [(5, 3), (7, 2)]


class TestReuseDistance:
    def test_cold_touches_counted(self):
        hist = reuse_distance_histogram(stream_of([0, 1, 2]))
        assert hist["cold"] == 3

    def test_immediate_reuse_in_smallest_bucket(self):
        hist = reuse_distance_histogram(stream_of([0, 0]), buckets=[4, 16])
        assert hist["<4"] == 1

    def test_distance_counts_distinct_pages(self):
        # Touch 0, then 5 other pages, then 0 again: distance 5.
        pages = [0, 1, 2, 3, 4, 5, 0]
        hist = reuse_distance_histogram(stream_of(pages), buckets=[4, 16])
        assert hist["<16"] == 1
        assert hist["<4"] == 0

    def test_beyond_last_bucket(self):
        pages = [0] + list(range(1, 40)) + [0]
        hist = reuse_distance_histogram(stream_of(pages), buckets=[4, 16])
        assert hist[">=16"] == 1

    def test_total_conserved(self):
        pages = [0, 1, 0, 2, 1, 0, 3]
        hist = reuse_distance_histogram(stream_of(pages))
        assert sum(hist.values()) == len(pages)


class TestMissRateEstimate:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            estimate_tlb_miss_rate(stream_of([0]), 0)

    def test_small_working_set_no_misses(self):
        pages = [0, 1, 2, 3] * 10
        assert estimate_tlb_miss_rate(stream_of(pages), entries=8) == 0.0

    def test_thrash_band_always_misses(self):
        pages = list(range(16)) * 3
        rate = estimate_tlb_miss_rate(stream_of(pages), entries=8)
        assert rate == 1.0  # reuse distance 15 >= 8 for every reuse

    def test_cold_included_when_requested(self):
        pages = [0, 1, 2]
        rate = estimate_tlb_miss_rate(stream_of(pages), entries=8,
                                      skip_cold=False)
        assert rate == 1.0

    def test_rate_monotone_in_capacity(self):
        pages = list(range(32)) * 2
        small = estimate_tlb_miss_rate(stream_of(pages), entries=8)
        large = estimate_tlb_miss_rate(stream_of(pages), entries=64)
        assert small >= large


class TestRegionBreakdown:
    def test_regions_counted(self):
        refs = [MemoryReference(10, (1 << 32) + 0x1000, False),
                MemoryReference(20, (2 << 32) + 0x1000, False),
                MemoryReference(30, (2 << 32) + 0x2000, False)]
        stream = CoreStream(0, 0, 1, refs)
        assert region_breakdown(stream) == {1: 1, 2: 2}
