"""Unit tests for the graph-workload generators."""

from itertools import islice

from repro.common.rng import make_rng
from repro.workloads.graphgen import bfs_bursts, graph_traversal


def take(gen, n):
    return list(islice(gen, n))


class TestGraphTraversal:
    def test_pages_in_range(self):
        gen = graph_traversal(1000, make_rng(0), {})
        assert all(0 <= p < 1000 for p in take(gen, 2000))

    def test_vertex_region_is_swept_sequentially(self):
        gen = graph_traversal(1000, make_rng(1), {"vertex_fraction": 0.25})
        vertex_pages = [p for p in take(gen, 3000) if p < 250]
        # The vertex visits, in order, increment (mod region size).
        increments = sum(1 for a, b in zip(vertex_pages, vertex_pages[1:])
                         if b == (a + 1) % 250)
        assert increments > len(vertex_pages) * 0.9

    def test_edge_targets_touch_edge_region(self):
        gen = graph_traversal(1000, make_rng(2), {"vertex_fraction": 0.25})
        edge_pages = [p for p in take(gen, 3000) if p >= 250]
        assert len(edge_pages) > 1000  # degree >= 1 per vertex

    def test_shuffle_scatters_targets(self):
        plain = graph_traversal(4000, make_rng(3), {"shuffle": False})
        mixed = graph_traversal(4000, make_rng(3), {"shuffle": True})
        hot_plain = [p for p in take(plain, 4000) if p >= 1000]
        hot_mixed = [p for p in take(mixed, 4000) if p >= 1000]
        # Unshuffled: popular targets cluster at low edge pages.
        assert sum(hot_plain) < sum(hot_mixed)

    def test_determinism(self):
        a = take(graph_traversal(500, make_rng(4), {}), 200)
        b = take(graph_traversal(500, make_rng(4), {}), 200)
        assert a == b


class TestBfsBursts:
    def test_pages_in_range(self):
        gen = bfs_bursts(1000, make_rng(5), {})
        assert all(0 <= p < 1000 for p in take(gen, 2000))

    def test_windows_are_revisited(self):
        gen = bfs_bursts(10000, make_rng(6),
                         {"window_pages": 16, "revisits": 3})
        pages = take(gen, 200)
        # Strong short-range reuse: many pages appear several times.
        repeats = len(pages) - len(set(pages))
        assert repeats > 40

    def test_bursts_jump_between_windows(self):
        gen = bfs_bursts(100000, make_rng(7),
                         {"window_pages": 8, "revisits": 1})
        pages = take(gen, 400)
        assert max(pages) - min(pages) > 1000  # windows land far apart
