"""Unit tests for multi-VM consolidation workloads."""

import pytest

from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.workloads.consolidation import (ConsolidatedWorkload,
                                           build_consolidation)


class TestBuildConsolidation:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            build_consolidation([])

    def test_rejects_bad_core_count(self):
        with pytest.raises(ValueError):
            build_consolidation(["gcc"], cores_per_vm=0)

    def test_vm_and_core_assignment(self):
        wl = build_consolidation(["gcc", "canneal"], cores_per_vm=2,
                                 refs_per_core=100, scale=0.03)
        assert [a.vm_id for a in wl.assignments] == [1, 2]
        assert wl.assignments[0].cores == (0, 1)
        assert wl.assignments[1].cores == (2, 3)
        assert {s.vm_id for s in wl.streams} == {1, 2}
        assert {s.core for s in wl.streams} == {0, 1, 2, 3}

    def test_thp_fraction_lookup(self):
        wl = build_consolidation(["gcc"], refs_per_core=50, scale=0.03)
        assert wl.thp_fraction_for(1) == pytest.approx(0.29)
        with pytest.raises(KeyError):
            wl.thp_fraction_for(9)

    def test_references_total(self):
        wl = build_consolidation(["gcc", "gups"], refs_per_core=100,
                                 scale=0.03)
        assert wl.references == sum(len(s) for s in wl.streams)

    def test_unknown_vm_error_names_known_ids(self):
        wl = build_consolidation(["gcc", "gups"], refs_per_core=50,
                                 scale=0.03)
        with pytest.raises(KeyError, match=r"no VM 9.*\[1, 2\]"):
            wl.thp_fraction_for(9)

    def test_duplicate_vm_id_raises(self):
        # __post_init__ must refuse: a silent duplicate would let one
        # VM's THP policy shadow another's.
        wl = build_consolidation(["gcc"], refs_per_core=50, scale=0.03)
        with pytest.raises(ValueError, match="duplicate vm_id 1"):
            ConsolidatedWorkload(
                assignments=wl.assignments + [wl.assignments[0]],
                streams=wl.streams,
                warmup_references=wl.warmup_references)

    def test_thp_fractions_mapping(self):
        wl = build_consolidation(["gcc", "gups"], refs_per_core=50,
                                 scale=0.03)
        fractions = wl.thp_fractions()
        assert set(fractions) == {1, 2}
        assert fractions[1] == wl.thp_fraction_for(1)


class TestConsolidatedSimulation:
    def test_runs_on_machine_with_per_vm_thp(self):
        wl = build_consolidation(["gcc", "streamcluster"], cores_per_vm=1,
                                 refs_per_core=300, scale=0.05, seed=4)
        thp = {a.vm_id: a.profile.thp_large_fraction for a in wl.assignments}
        machine = Machine(SystemConfig(num_cores=2), scheme="pom",
                          thp_fractions=thp, seed=4)
        result = machine.run(wl.streams,
                             warmup_references=wl.warmup_references)
        assert result.references > 0
        # Two VMs exist and each allocated pages.
        assert set(machine.host.vms) == {1, 2}
        for vm in machine.host.vms.values():
            assert vm.processes

    def test_vm_isolation_in_pom(self):
        wl = build_consolidation(["gcc", "gcc"], cores_per_vm=1,
                                 refs_per_core=200, scale=0.03, seed=4)
        machine = Machine(SystemConfig(num_cores=2), scheme="pom", seed=4)
        machine.run(wl.streams, warmup_references=wl.warmup_references)
        # Same benchmark in two VMs: every page walked twice (no
        # cross-VM translation sharing).
        footprints = [sum(p.footprint_bytes for p in vm.processes.values())
                      for vm in machine.host.vms.values()]
        assert footprints[0] > 0 and footprints[0] == footprints[1]
