"""Unit tests for the benchmark suite."""

import pytest

from repro.workloads.suite import BENCHMARKS, SUITE, get_profile
from repro.workloads.trace import validate_stream


class TestSuiteContents:
    def test_fifteen_benchmarks(self):
        assert len(BENCHMARKS) == 15

    def test_expected_names_present(self):
        for name in ("astar", "gups", "mcf", "streamcluster", "ccomponent",
                     "graph500", "pagerank", "GemsFDTD"):
            assert name in SUITE

    def test_get_profile_unknown_rejected(self):
        with pytest.raises(ValueError):
            get_profile("doom")

    def test_table2_values_match_paper(self):
        mcf = get_profile("mcf")
        assert mcf.overhead_virtual_pct == 19.01
        assert mcf.cycles_per_miss_virtual == 169
        assert mcf.large_page_fraction_pct == 60.7
        ccomp = get_profile("ccomponent")
        assert ccomp.cycles_per_miss_virtual == 1158
        stream = get_profile("streamcluster")
        assert stream.overhead_virtual_pct == 2.11

    def test_region_weights_positive(self):
        for profile in SUITE.values():
            assert all(r.weight > 0 for r in profile.regions)
            assert all(r.pages > 0 for r in profile.regions)

    def test_multithreaded_flags(self):
        # PARSEC + graph workloads share an address space; SPEC is rate.
        assert get_profile("canneal").multithreaded
        assert get_profile("pagerank").multithreaded
        assert not get_profile("mcf").multithreaded
        assert not get_profile("gups").multithreaded

    def test_anchors(self):
        p = get_profile("astar")
        assert p.anchor(virtualized=True).cycles_per_l2_miss == 114
        assert p.anchor(virtualized=False).cycles_per_l2_miss == 98

    def test_thp_fraction(self):
        assert get_profile("streamcluster").thp_large_fraction == pytest.approx(0.872)


class TestBuild:
    def test_stream_count_and_sizes(self):
        wl = get_profile("gcc").build(num_cores=2, refs_per_core=500,
                                      seed=3, scale=0.05)
        assert len(wl.streams) == 2
        for stream in wl.streams:
            assert len(stream) >= 500
            validate_stream(stream)

    def test_warmup_covers_footprint(self):
        profile = get_profile("gcc")
        wl = profile.build(num_cores=2, refs_per_core=100, seed=3, scale=0.05)
        assert wl.warmup_references == 2 * profile.footprint_pages(0.05)

    def test_multithreaded_single_prologue(self):
        profile = get_profile("canneal")
        wl = profile.build(num_cores=4, refs_per_core=100, seed=3, scale=0.05)
        assert wl.warmup_references == profile.footprint_pages(0.05)
        # Threads share the address space.
        assert {s.asid for s in wl.streams} == {1}

    def test_specrate_private_address_spaces(self):
        wl = get_profile("gups").build(num_cores=3, refs_per_core=100,
                                       seed=3, scale=0.05)
        assert {s.asid for s in wl.streams} == {1, 2, 3}

    def test_determinism(self):
        a = get_profile("mcf").build(2, 300, seed=5, scale=0.05)
        b = get_profile("mcf").build(2, 300, seed=5, scale=0.05)
        for sa, sb in zip(a.streams, b.streams):
            assert list(sa) == list(sb)

    def test_seed_changes_traces(self):
        a = get_profile("mcf").build(1, 300, seed=5, scale=0.05)
        b = get_profile("mcf").build(1, 300, seed=6, scale=0.05)
        assert list(a.streams[0]) != list(b.streams[0])

    def test_aslr_separates_specrate_layouts(self):
        wl = get_profile("gups").build(num_cores=2, refs_per_core=50,
                                       seed=3, scale=0.05)
        first_pages = {s.core: s.references[0].vaddr >> 12 for s in wl.streams}
        assert first_pages[0] != first_pages[1]

    def test_addresses_within_region_bounds(self):
        profile = get_profile("soplex")
        wl = profile.build(num_cores=1, refs_per_core=1000, seed=1, scale=0.05)
        for ref in wl.streams[0]:
            assert ref.vaddr >= 1 << 32  # regions start at 4 GiB

    def test_references_property(self):
        wl = get_profile("gcc").build(num_cores=2, refs_per_core=200,
                                      seed=1, scale=0.05)
        assert wl.references == sum(len(s) for s in wl.streams)


class TestWriteFraction:
    def test_writes_present_in_measured_phase(self):
        profile = get_profile("gups")  # 50% writes
        wl = profile.build(num_cores=1, refs_per_core=2000, seed=2, scale=0.05)
        measured = wl.streams[0].references[wl.warmup_references:]
        writes = sum(1 for r in measured if r.write)
        assert 0.35 < writes / len(measured) < 0.65
