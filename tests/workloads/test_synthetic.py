"""Unit tests for the synthetic pattern generators."""

from itertools import islice

import pytest

from repro.common.rng import make_rng
from repro.workloads.synthetic import (
    PATTERNS,
    make_pattern,
    pointer_chase,
    sequential,
    strided,
    uniform_random,
    zipf,
)


def take(gen, n):
    return list(islice(gen, n))


class TestSequential:
    def test_wraps_around(self):
        gen = sequential(4, make_rng(0), {})
        assert take(gen, 6) == [0, 1, 2, 3, 0, 1]

    def test_random_start(self):
        gen = sequential(1000, make_rng(1), {"random_start": True})
        first = next(gen)
        assert 0 <= first < 1000


class TestStrided:
    def test_covers_all_pages_per_pass(self):
        gen = strided(32, make_rng(0), {"stride": 5})
        pages = take(gen, 32)
        assert sorted(pages) == list(range(32))

    def test_stride_adjusted_to_coprime(self):
        # stride 4 shares a factor with 32; generator must fix it up.
        gen = strided(32, make_rng(0), {"stride": 4})
        assert sorted(take(gen, 32)) == list(range(32))

    def test_constant_stride(self):
        gen = strided(31, make_rng(0), {"stride": 7})
        pages = take(gen, 4)
        deltas = {(b - a) % 31 for a, b in zip(pages, pages[1:])}
        assert deltas == {7}


class TestZipf:
    def test_in_range(self):
        gen = zipf(100, make_rng(2), {"alpha": 1.0})
        assert all(0 <= p < 100 for p in take(gen, 500))

    def test_hot_pages_are_low_indices(self):
        gen = zipf(1000, make_rng(3), {"alpha": 1.2})
        pages = take(gen, 3000)
        low = sum(1 for p in pages if p < 50)
        assert low > len(pages) * 0.4


class TestUniformRandom:
    def test_spreads_over_footprint(self):
        gen = uniform_random(1000, make_rng(4), {})
        pages = set(take(gen, 3000))
        assert len(pages) > 800


class TestPointerChase:
    def test_is_a_permutation_cycle(self):
        gen = pointer_chase(64, make_rng(5), {})
        pages = take(gen, 64)
        assert sorted(pages) == list(range(64))  # full cycle, no repeats

    def test_cycle_repeats_exactly(self):
        gen = pointer_chase(64, make_rng(6), {})
        first = take(gen, 64)
        second = take(gen, 64)
        assert first == second

    def test_not_sequential(self):
        gen = pointer_chase(256, make_rng(7), {})
        pages = take(gen, 256)
        adjacent = sum(1 for a, b in zip(pages, pages[1:]) if b == a + 1)
        assert adjacent < 20


class TestMakePattern:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_all_patterns_constructible(self, name):
        gen = make_pattern(name, 64, make_rng(8))
        assert all(0 <= p < 64 for p in take(gen, 50))

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("mystery", 64, make_rng(0))

    def test_zero_pages_rejected(self):
        with pytest.raises(ValueError):
            make_pattern("sequential", 0, make_rng(0))

    def test_determinism(self):
        a = take(make_pattern("zipf", 100, make_rng(9), {"alpha": 1.0}), 50)
        b = take(make_pattern("zipf", 100, make_rng(9), {"alpha": 1.0}), 50)
        assert a == b
