"""Unit tests for the trace format and interleaving."""

import pytest

from repro.common.errors import TraceFormatError
from repro.workloads.trace import (
    CoreStream,
    MemoryReference,
    interleave,
    load_stream,
    save_stream,
    validate_stream,
)


def make_stream(core=0, n=5, start=0):
    refs = [MemoryReference(start + i * 10, 0x1000 * i, i % 2 == 0)
            for i in range(n)]
    return CoreStream(core=core, vm_id=1, asid=2, references=refs)


class TestCoreStream:
    def test_len_and_iter(self):
        s = make_stream(n=5)
        assert len(s) == 5
        assert list(s) == list(s.references)

    def test_instructions(self):
        s = make_stream(n=3)
        assert s.instructions == s.references[-1].icount

    def test_instructions_empty(self):
        assert CoreStream(core=0, vm_id=0, asid=0).instructions == 0


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        s = make_stream(n=10)
        path = str(tmp_path / "trace.txt")
        save_stream(s, path)
        loaded = load_stream(path)
        assert loaded.core == s.core
        assert loaded.vm_id == s.vm_id
        assert loaded.asid == s.asid
        assert loaded.references == list(s.references)

    def test_gzip_roundtrip(self, tmp_path):
        s = make_stream(n=10)
        path = str(tmp_path / "trace.txt.gz")
        save_stream(s, path)
        assert load_stream(path).references == list(s.references)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("10 1000 R\n")
        with pytest.raises(TraceFormatError):
            load_stream(str(path))

    def test_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 zz R\n")
        with pytest.raises(TraceFormatError):
            load_stream(str(path))

    def test_bad_rw_flag_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 1000 X\n")
        with pytest.raises(TraceFormatError):
            load_stream(str(path))

    def test_header_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0\n")
        with pytest.raises(TraceFormatError):
            load_stream(str(path))

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 1000 R\n\n")
        assert len(load_stream(str(path)).references) == 1


class TestErrorContext:
    """Strict validation names the file, line and offending text."""

    def test_bad_record_names_line_and_text(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n"
                        "10 1000 R\n10 zz R\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_stream(str(path))
        error = excinfo.value
        assert error.lineno == 3
        assert error.path == str(path)
        assert error.text == "10 zz R"
        assert f"{path}:3:" in str(error)
        assert "10 zz R" in str(error)

    def test_truncated_record_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 1000\n")
        with pytest.raises(TraceFormatError, match="truncated record"):
            load_stream(str(path))

    def test_negative_address_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 -1f R\n")
        with pytest.raises(TraceFormatError, match="out of range"):
            load_stream(str(path))

    def test_oversized_address_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        too_wide = format(1 << 64, "x")
        path.write_text(f"#pomtlb-trace core=0 vm=0 asid=1\n10 {too_wide} R\n")
        with pytest.raises(TraceFormatError, match="64-bit"):
            load_stream(str(path))

    def test_negative_icount_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n-10 1000 R\n")
        with pytest.raises(TraceFormatError, match="negative instruction"):
            load_stream(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            load_stream(str(path))

    def test_non_integer_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=zero vm=0 asid=1\n")
        with pytest.raises(TraceFormatError, match="header"):
            load_stream(str(path))

    def test_truncated_gzip_rejected(self, tmp_path):
        s = make_stream(n=50)
        path = str(tmp_path / "trace.txt.gz")
        save_stream(s, path)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_stream(path)


class TestValidate:
    def test_valid_stream_passes(self):
        validate_stream(make_stream())

    def test_backwards_icount_rejected(self):
        refs = [MemoryReference(10, 0, False), MemoryReference(5, 0, False)]
        with pytest.raises(TraceFormatError):
            validate_stream(CoreStream(0, 0, 0, refs))

    def test_equal_icount_allowed(self):
        refs = [MemoryReference(10, 0, False), MemoryReference(10, 0, False)]
        validate_stream(CoreStream(0, 0, 0, refs))

    def test_negative_address_rejected(self):
        refs = [MemoryReference(10, -1, False)]
        with pytest.raises(TraceFormatError, match="out of range"):
            validate_stream(CoreStream(0, 0, 0, refs))

    def test_oversized_address_rejected(self):
        refs = [MemoryReference(10, 1 << 64, False)]
        with pytest.raises(TraceFormatError, match="64-bit"):
            validate_stream(CoreStream(0, 0, 0, refs))

    def test_error_names_offending_record(self):
        refs = [MemoryReference(10, 0, False), MemoryReference(5, 0, False)]
        with pytest.raises(TraceFormatError, match="record 1"):
            validate_stream(CoreStream(0, 0, 0, refs))


class TestInterleave:
    def test_merges_by_icount(self):
        a = CoreStream(0, 0, 1, [MemoryReference(1, 0, False),
                                 MemoryReference(30, 0, False)])
        b = CoreStream(1, 0, 2, [MemoryReference(10, 0, False),
                                 MemoryReference(20, 0, False)])
        order = [(s.core, r.icount) for s, r in interleave([a, b])]
        assert order == [(0, 1), (1, 10), (1, 20), (0, 30)]

    def test_tie_breaks_by_core(self):
        a = CoreStream(1, 0, 1, [MemoryReference(5, 0, False)])
        b = CoreStream(0, 0, 2, [MemoryReference(5, 0, False)])
        order = [s.core for s, _ in interleave([a, b])]
        assert order == [0, 1]

    def test_empty_streams_ok(self):
        assert list(interleave([CoreStream(0, 0, 0)])) == []

    def test_all_references_delivered(self):
        streams = [make_stream(core=c, n=7, start=c) for c in range(3)]
        merged = list(interleave(streams))
        assert len(merged) == 21
