"""Unit tests for the trace format and interleaving."""

import pytest

from repro.common.errors import TraceFormatError
from repro.workloads.trace import (
    CoreStream,
    MemoryReference,
    interleave,
    load_stream,
    save_stream,
    validate_stream,
)


def make_stream(core=0, n=5, start=0):
    refs = [MemoryReference(start + i * 10, 0x1000 * i, i % 2 == 0)
            for i in range(n)]
    return CoreStream(core=core, vm_id=1, asid=2, references=refs)


class TestCoreStream:
    def test_len_and_iter(self):
        s = make_stream(n=5)
        assert len(s) == 5
        assert list(s) == list(s.references)

    def test_instructions(self):
        s = make_stream(n=3)
        assert s.instructions == s.references[-1].icount

    def test_instructions_empty(self):
        assert CoreStream(core=0, vm_id=0, asid=0).instructions == 0


class TestSerialization:
    def test_roundtrip(self, tmp_path):
        s = make_stream(n=10)
        path = str(tmp_path / "trace.txt")
        save_stream(s, path)
        loaded = load_stream(path)
        assert loaded.core == s.core
        assert loaded.vm_id == s.vm_id
        assert loaded.asid == s.asid
        assert loaded.references == list(s.references)

    def test_gzip_roundtrip(self, tmp_path):
        s = make_stream(n=10)
        path = str(tmp_path / "trace.txt.gz")
        save_stream(s, path)
        assert load_stream(path).references == list(s.references)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("10 1000 R\n")
        with pytest.raises(TraceFormatError):
            load_stream(str(path))

    def test_bad_record_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 zz R\n")
        with pytest.raises(TraceFormatError):
            load_stream(str(path))

    def test_bad_rw_flag_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 1000 X\n")
        with pytest.raises(TraceFormatError):
            load_stream(str(path))

    def test_header_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0\n")
        with pytest.raises(TraceFormatError):
            load_stream(str(path))

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 1000 R\n\n")
        assert len(load_stream(str(path)).references) == 1


class TestErrorContext:
    """Strict validation names the file, line and offending text."""

    def test_bad_record_names_line_and_text(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n"
                        "10 1000 R\n10 zz R\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_stream(str(path))
        error = excinfo.value
        assert error.lineno == 3
        assert error.path == str(path)
        assert error.text == "10 zz R"
        assert f"{path}:3:" in str(error)
        assert "10 zz R" in str(error)

    def test_truncated_record_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 1000\n")
        with pytest.raises(TraceFormatError, match="truncated record"):
            load_stream(str(path))

    def test_negative_address_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 -1f R\n")
        with pytest.raises(TraceFormatError, match="out of range"):
            load_stream(str(path))

    def test_oversized_address_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        too_wide = format(1 << 64, "x")
        path.write_text(f"#pomtlb-trace core=0 vm=0 asid=1\n10 {too_wide} R\n")
        with pytest.raises(TraceFormatError, match="64-bit"):
            load_stream(str(path))

    def test_negative_icount_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n-10 1000 R\n")
        with pytest.raises(TraceFormatError, match="negative instruction"):
            load_stream(str(path))

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.txt"
        path.write_text("")
        with pytest.raises(TraceFormatError, match="empty"):
            load_stream(str(path))

    def test_non_integer_header_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=zero vm=0 asid=1\n")
        with pytest.raises(TraceFormatError, match="header"):
            load_stream(str(path))

    def test_truncated_gzip_rejected(self, tmp_path):
        s = make_stream(n=50)
        path = str(tmp_path / "trace.txt.gz")
        save_stream(s, path)
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])
        with pytest.raises(TraceFormatError, match="truncated"):
            load_stream(path)


class TestValidate:
    def test_valid_stream_passes(self):
        validate_stream(make_stream())

    def test_backwards_icount_rejected(self):
        refs = [MemoryReference(10, 0, False), MemoryReference(5, 0, False)]
        with pytest.raises(TraceFormatError):
            validate_stream(CoreStream(0, 0, 0, refs))

    def test_equal_icount_allowed(self):
        refs = [MemoryReference(10, 0, False), MemoryReference(10, 0, False)]
        validate_stream(CoreStream(0, 0, 0, refs))

    def test_negative_address_rejected(self):
        refs = [MemoryReference(10, -1, False)]
        with pytest.raises(TraceFormatError, match="out of range"):
            validate_stream(CoreStream(0, 0, 0, refs))

    def test_oversized_address_rejected(self):
        refs = [MemoryReference(10, 1 << 64, False)]
        with pytest.raises(TraceFormatError, match="64-bit"):
            validate_stream(CoreStream(0, 0, 0, refs))

    def test_error_names_offending_record(self):
        refs = [MemoryReference(10, 0, False), MemoryReference(5, 0, False)]
        with pytest.raises(TraceFormatError, match="record 1"):
            validate_stream(CoreStream(0, 0, 0, refs))


class TestInterleave:
    def test_merges_by_icount(self):
        a = CoreStream(0, 0, 1, [MemoryReference(1, 0, False),
                                 MemoryReference(30, 0, False)])
        b = CoreStream(1, 0, 2, [MemoryReference(10, 0, False),
                                 MemoryReference(20, 0, False)])
        order = [(s.core, r.icount) for s, r in interleave([a, b])]
        assert order == [(0, 1), (1, 10), (1, 20), (0, 30)]

    def test_tie_breaks_by_core(self):
        a = CoreStream(1, 0, 1, [MemoryReference(5, 0, False)])
        b = CoreStream(0, 0, 2, [MemoryReference(5, 0, False)])
        order = [s.core for s, _ in interleave([a, b])]
        assert order == [0, 1]

    def test_empty_streams_ok(self):
        assert list(interleave([CoreStream(0, 0, 0)])) == []

    def test_all_references_delivered(self):
        streams = [make_stream(core=c, n=7, start=c) for c in range(3)]
        merged = list(interleave(streams))
        assert len(merged) == 21


class TestLoadStreamPacked:
    """Text -> packed streaming loader (shared grammar with load_stream)."""

    def test_roundtrip_matches_load_stream(self, tmp_path):
        from repro.workloads.trace import load_stream_packed

        s = make_stream(n=25)
        path = str(tmp_path / "trace.txt")
        save_stream(s, path)
        packed = load_stream_packed(path)
        assert (packed.core, packed.vm_id, packed.asid) == (0, 1, 2)
        assert list(packed.references) == load_stream(path).references

    def test_gzip_roundtrip(self, tmp_path):
        from repro.workloads.trace import load_stream_packed

        s = make_stream(n=25)
        path = str(tmp_path / "trace.txt.gz")
        save_stream(s, path)
        assert list(load_stream_packed(path).references) == \
            list(s.references)

    def test_empty_stream(self, tmp_path):
        from repro.workloads.trace import load_stream_packed

        path = str(tmp_path / "trace.txt")
        save_stream(CoreStream(core=0, vm_id=0, asid=1), path)
        packed = load_stream_packed(path)
        assert len(packed) == 0

    def test_same_diagnostics_as_load_stream(self, tmp_path):
        from repro.workloads.trace import load_stream_packed

        path = tmp_path / "bad.txt"
        path.write_text("#pomtlb-trace core=0 vm=0 asid=1\n"
                        "10 1000 R\n10 zz R\n")
        with pytest.raises(TraceFormatError) as excinfo:
            load_stream_packed(str(path))
        assert excinfo.value.lineno == 3
        assert excinfo.value.text == "10 zz R"


class TestLargeTraceMemory:
    """Streaming loaders must not hold a large trace as Python objects."""

    N = 20000

    def _trace_file(self, tmp_path, suffix=".gz"):
        import random

        rng = random.Random(7)
        path = str(tmp_path / f"big.trace{suffix}")
        refs = []
        icount = 0
        for _ in range(self.N):
            icount += rng.randrange(1, 30)
            refs.append(MemoryReference(icount, rng.getrandbits(48),
                                        rng.random() < 0.3))
        save_stream(CoreStream(core=0, vm_id=0, asid=1, references=refs),
                    path)
        return path

    def _peak(self, loader, path):
        import gc
        import tracemalloc

        gc.collect()
        tracemalloc.start()
        stream = loader(path)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert len(stream.references) == self.N
        return peak

    def test_packed_loader_peak_is_columnar(self, tmp_path):
        from repro.workloads.trace import load_stream_packed

        path = self._trace_file(tmp_path)
        list_peak = self._peak(load_stream, path)
        packed_peak = self._peak(load_stream_packed, path)
        # ~17 B/record in columns vs ~120 B/record of namedtuples; allow
        # generous slack for array growth and line buffers while still
        # catching any whole-file or whole-list buffering regression.
        assert packed_peak < list_peak / 2, (packed_peak, list_peak)
        assert packed_peak < self.N * 60, packed_peak

    def test_gzip_text_loader_streams(self, tmp_path):
        # Line-by-line gzip decode: peak stays near the reference-list
        # cost; a loader that buffered the whole decompressed file first
        # would sit well above it.
        path_gz = self._trace_file(tmp_path, suffix=".gz")
        path_txt = self._trace_file(tmp_path, suffix="")
        gz_peak = self._peak(load_stream, path_gz)
        txt_peak = self._peak(load_stream, path_txt)
        assert gz_peak < txt_peak * 1.5 + 256 * 1024, (gz_peak, txt_peak)


class TestInterleavePacked:
    """Packed streams interleave identically to list-backed ones."""

    def _flatten(self, streams):
        from repro.workloads.trace import interleave_batched

        out = []
        for stream, lo, hi in interleave_batched(streams):
            for i in range(lo, hi):
                out.append((stream.core, stream.references[i]))
        return out

    def test_chunks_match_corestream(self):
        from repro.workloads.packed import pack_stream

        streams = [make_stream(core=c, n=13, start=c * 3) for c in range(3)]
        packed = [pack_stream(s) for s in streams]
        assert self._flatten(packed) == self._flatten(streams)

    def test_mixed_packed_and_list_streams(self):
        from repro.workloads.packed import pack_stream

        streams = [make_stream(core=c, n=11, start=c) for c in range(4)]
        mixed = [pack_stream(s) if c % 2 else s
                 for c, s in enumerate(streams)]
        assert self._flatten(mixed) == self._flatten(streams)

    def test_matches_reference_interleave(self):
        from repro.workloads.packed import pack_stream

        streams = [make_stream(core=c, n=9, start=c * 2) for c in range(3)]
        packed = [pack_stream(s) for s in streams]
        reference = [(s.core, r) for s, r in interleave(streams)]
        assert self._flatten(packed) == reference
