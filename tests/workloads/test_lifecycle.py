"""Unit tests for lifecycle scenario generators."""

import pytest

from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.workloads.lifecycle import (LifecycleEvent, build_churn,
                                       build_migration,
                                       build_shootdown_storm)
from repro.workloads.trace import interleave_batched, validate_stream


def global_order(streams):
    out = []
    for stream, lo, hi in interleave_batched(streams):
        out.extend((stream, i) for i in range(lo, hi))
    return out


class TestLifecycleEvent:
    def test_unknown_kind_rejected(self):
        event = LifecycleEvent(position=0, kind="hibernate", vm_id=1)
        machine = Machine(SystemConfig(num_cores=1), scheme="pom")
        with pytest.raises(ValueError, match="hibernate"):
            event.apply(machine)

    def test_destroy_dispatch(self):
        machine = Machine(SystemConfig(num_cores=1), scheme="pom")
        machine.touch(3, 1, 0x1000)
        LifecycleEvent(position=0, kind="destroy_vm", vm_id=3).apply(machine)
        assert 3 not in machine.host.vms


class TestBuildChurn:
    def test_rejects_empty_and_bad_generations(self):
        with pytest.raises(ValueError):
            build_churn([])
        with pytest.raises(ValueError):
            build_churn(["gups"], generations=0)

    def test_generations_get_fresh_vm_ids(self):
        wl = build_churn(["gups", "mcf"], generations=3, refs_per_core=50,
                         scale=0.03)
        assert {s.vm_id for s in wl.streams} == set(range(1, 7))
        assert wl.boots == wl.teardowns == 6
        assert len(wl.events) == 6
        assert all(e.kind == "destroy_vm" for e in wl.events)

    def test_streams_stay_valid_after_icount_shift(self):
        wl = build_churn(["gups"], generations=3, refs_per_core=50,
                         scale=0.03)
        for stream in wl.streams:
            validate_stream(stream)

    def test_teardown_fires_right_after_vm_last_reference(self):
        wl = build_churn(["gups", "mcf"], generations=2, refs_per_core=50,
                         scale=0.03)
        order = global_order(wl.streams)
        for event in wl.events:
            # Every reference before the event position belongs to a
            # stream whose VM is this one or still running; crucially the
            # event's VM has no references AT or past the position.
            later = order[event.position:]
            assert all(s.vm_id != event.vm_id for s, _i in later), \
                "destroy_vm scheduled before its VM finished"

    def test_generation_footprints_identical(self):
        # Same per-slot seed: gen 2 replays gen 1's vaddrs exactly.
        wl = build_churn(["gups"], generations=2, refs_per_core=50,
                         scale=0.03)
        first, second = wl.streams
        assert [r.vaddr for r in first.references] == \
            [r.vaddr for r in second.references]


class TestBuildMigration:
    def test_bursts_target_live_vms(self):
        wl = build_migration(["gups", "mcf"], refs_per_core=100,
                             scale=0.03, bursts=3)
        assert wl.kind == "migration"
        assert 0 < len(wl.events) <= 3
        order = global_order(wl.streams)
        for event in wl.events:
            earlier = order[:event.position]
            later = order[event.position:]
            assert any(s.vm_id == event.vm_id for s, _i in earlier), \
                "migration burst before the VM booted"
            assert any(s.vm_id == event.vm_id for s, _i in later), \
                "migration burst after the VM already finished (churn)"

    def test_zero_bursts(self):
        wl = build_migration(["gups"], refs_per_core=50, scale=0.03,
                             bursts=0)
        assert wl.events == []


class TestBuildShootdownStorm:
    def test_rate_zero_is_control(self):
        wl = build_shootdown_storm("gups", num_cores=2, refs_per_core=100,
                                   scale=0.03, per_1k_refs=0.0)
        assert wl.events == []
        assert wl.warmup_references > 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            build_shootdown_storm("gups", per_1k_refs=-1.0)

    def test_events_target_recently_replayed_pages(self):
        wl = build_shootdown_storm("gups", num_cores=2, refs_per_core=200,
                                   scale=0.03, per_1k_refs=50.0)
        assert wl.events, "expected storm events at this rate"
        order = global_order(wl.streams)
        for event in wl.events:
            stream, index = order[event.position - 1]
            ref = stream.references[index]
            assert event.vaddr == ref.vaddr
            assert event.vm_id == stream.vm_id
            assert event.asid == stream.asid

    def test_storm_positions_past_warmup(self):
        wl = build_shootdown_storm("gups", num_cores=2, refs_per_core=200,
                                   scale=0.03, per_1k_refs=50.0)
        warmup_total = sum(wl.warmup_by_core.values()) or \
            wl.warmup_references
        assert all(e.position > warmup_total for e in wl.events)
