"""Unit tests for the content-addressed workload cache."""

import os

import pytest

from repro.experiments.runner import ExperimentParams
from repro.resilience.checkpoint import run_key
from repro.workloads.cache import (
    WorkloadCache,
    params_workload_key,
    workload_key,
)

PARAMS = ExperimentParams(num_cores=2, refs_per_core=150, scale=0.05, seed=9)


class TestWorkloadKey:
    def test_deterministic(self):
        assert workload_key("gups", 2, 100, 42, 0.5) == \
            workload_key("gups", 2, 100, 42, 0.5)

    def test_every_input_participates(self):
        base = workload_key("gups", 2, 100, 42, 0.5)
        assert workload_key("gcc", 2, 100, 42, 0.5) != base
        assert workload_key("gups", 4, 100, 42, 0.5) != base
        assert workload_key("gups", 2, 200, 42, 0.5) != base
        assert workload_key("gups", 2, 100, 43, 0.5) != base
        assert workload_key("gups", 2, 100, 42, 0.6) != base

    def test_same_discipline_as_checkpoint_key(self):
        key = workload_key("gups", 2, 100, 42, 0.5)
        ck = run_key("gups", "pom", PARAMS)
        assert len(key) == len(ck) == 32
        assert all(c in "0123456789abcdef" for c in key)

    def test_simulation_knobs_do_not_change_key(self):
        import dataclasses

        base = params_workload_key("gups", PARAMS)
        pom32 = dataclasses.replace(PARAMS, pom_size_bytes=32 << 20)
        uncached = dataclasses.replace(PARAMS, cache_tlb_entries=False)
        pooled = dataclasses.replace(PARAMS, workers=8)
        assert params_workload_key("gups", pom32) == base
        assert params_workload_key("gups", uncached) == base
        assert params_workload_key("gups", pooled) == base

    def test_workload_knobs_change_key(self):
        import dataclasses

        base = params_workload_key("gups", PARAMS)
        other = dataclasses.replace(PARAMS, refs_per_core=300)
        assert params_workload_key("gups", other) != base


class TestCache:
    def test_miss_then_hit(self, tmp_path):
        cache = WorkloadCache(str(tmp_path / "wl"))
        first, hit1 = cache.get_or_compile("gups", PARAMS)
        second, hit2 = cache.get_or_compile("gups", PARAMS)
        assert not hit1 and hit2
        assert cache.stats() == {"hits": 1, "misses": 1, "rejected": 0}
        for a, b in zip(first.streams, second.streams):
            assert list(a.references) == list(b.references)
        first.backing.close()
        second.backing.close()

    def test_hit_is_validated(self, tmp_path):
        cache = WorkloadCache(str(tmp_path / "wl"))
        cache.get_or_compile("gups", PARAMS)[0].backing.close()
        container, hit = cache.get_or_compile("gups", PARAMS)
        assert hit and container.validated
        assert all(s.validated for s in container.streams)
        container.backing.close()

    def test_cache_matches_generation(self, tmp_path):
        from repro.workloads.suite import get_profile

        cache = WorkloadCache(str(tmp_path / "wl"))
        container, _ = cache.get_or_compile("gcc", PARAMS)
        workload = get_profile("gcc").build(
            num_cores=PARAMS.num_cores, refs_per_core=PARAMS.refs_per_core,
            seed=PARAMS.seed, scale=PARAMS.scale)
        for generated, cached in zip(workload.streams, container.streams):
            assert list(cached.references) == list(generated.references)
        container.backing.close()

    def test_corrupted_entry_rejected_and_regenerated(self, tmp_path):
        cache = WorkloadCache(str(tmp_path / "wl"))
        reference, _ = cache.get_or_compile("gups", PARAMS)
        # Materialize before corrupting: the container mmaps the entry
        # file, so in-place damage would alias into its streams.
        expected = [list(s.references) for s in reference.streams]
        reference.backing.close()
        key = params_workload_key("gups", PARAMS)
        path = cache.entry_path(key)
        data = bytearray(open(path, "rb").read())
        data[len(data) // 2] ^= 0xFF
        with open(path, "wb") as handle:
            handle.write(bytes(data))
        container, hit = cache.get_or_compile("gups", PARAMS)
        assert not hit
        assert cache.rejected == 1
        # Regenerated entry carries the same streams as the original.
        for refs, stream in zip(expected, container.streams):
            assert list(stream.references) == refs
        container.backing.close()

    def test_load_of_missing_key_is_miss(self, tmp_path):
        cache = WorkloadCache(str(tmp_path / "wl"))
        assert cache.load("0" * 32) is None
        assert cache.misses == 1

    def test_contains(self, tmp_path):
        cache = WorkloadCache(str(tmp_path / "wl"))
        key = params_workload_key("gups", PARAMS)
        assert key not in cache
        cache.get_or_compile("gups", PARAMS)[0].backing.close()
        assert key in cache

    def test_entries_written_atomically(self, tmp_path):
        cache = WorkloadCache(str(tmp_path / "wl"))
        cache.get_or_compile("gups", PARAMS)[0].backing.close()
        leftovers = [name for name in os.listdir(cache.root)
                     if name.endswith(".tmp")]
        assert not leftovers

    def test_distinct_configs_distinct_entries(self, tmp_path):
        import dataclasses

        cache = WorkloadCache(str(tmp_path / "wl"))
        cache.get_or_compile("gups", PARAMS)[0].backing.close()
        other = dataclasses.replace(PARAMS, num_cores=1)
        cache.get_or_compile("gups", other)[0].backing.close()
        assert len(os.listdir(cache.root)) == 2
