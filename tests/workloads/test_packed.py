"""Unit tests for the packed binary columnar trace format."""

import gzip
import struct

import pytest

from repro.common.errors import PackedTraceError
from repro.workloads.packed import (
    BYTES_PER_RECORD,
    FORMAT_VERSION,
    MAGIC,
    PackedStream,
    decode_container,
    encode_streams,
    encode_workload,
    load_packed,
    pack_stream,
    save_packed,
    unpack_stream,
)
from repro.workloads.suite import get_profile
from repro.workloads.trace import CoreStream, MemoryReference, validate_stream


def make_stream(core=0, n=5, start=0):
    refs = [MemoryReference(start + i * 10, 0x1000 * i, i % 2 == 0)
            for i in range(n)]
    return CoreStream(core=core, vm_id=1, asid=2, references=refs)


class TestPackUnpack:
    def test_roundtrip_exact(self):
        stream = make_stream(n=17)
        packed = pack_stream(stream)
        assert list(packed.references) == list(stream.references)
        assert unpack_stream(packed).references == list(stream.references)

    def test_metadata_preserved(self):
        packed = pack_stream(make_stream(core=3))
        assert (packed.core, packed.vm_id, packed.asid) == (3, 1, 2)

    def test_len_iter_instructions_match_corestream(self):
        stream = make_stream(n=9)
        packed = pack_stream(stream)
        assert len(packed) == len(stream)
        assert list(packed) == list(stream)
        assert packed.instructions == stream.instructions

    def test_empty_stream(self):
        packed = pack_stream(CoreStream(core=0, vm_id=0, asid=1))
        assert len(packed) == 0
        assert packed.instructions == 0
        assert list(packed.references) == []

    def test_64bit_addresses_survive(self):
        refs = [MemoryReference(1, (1 << 64) - 1, True),
                MemoryReference(2, 0, False)]
        packed = pack_stream(CoreStream(0, 0, 1, refs))
        assert list(packed.references) == refs

    def test_refview_slice_and_negative_index(self):
        stream = make_stream(n=8)
        packed = pack_stream(stream)
        assert packed.references[2:5] == list(stream.references)[2:5]
        assert packed.references[-1] == stream.references[-1]
        with pytest.raises(IndexError):
            packed.references[8]


class TestDepack:
    """Assigning ``references`` de-packs the stream (fault injection)."""

    def test_references_setter_depacks(self):
        packed = pack_stream(make_stream(n=6), validated=True)
        refs = list(packed.references)
        refs[3] = refs[3]._replace(vaddr=0xdead000)
        packed.references = refs
        assert packed.columns() is None
        assert packed.icounts is None
        assert not packed.validated
        assert packed.references[3].vaddr == 0xdead000
        assert len(packed) == 6

    def test_view_isolates_mutation(self):
        base = pack_stream(make_stream(n=6), validated=True)
        view = base.view()
        view.references = []
        assert len(view) == 0 and not view.validated
        assert len(base) == 6 and base.validated
        assert base.columns() is not None

    def test_view_of_depacked_stream_copies(self):
        base = pack_stream(make_stream(n=4))
        base.references = list(base.references)[:2]
        view = base.view()
        view.references = []
        assert len(base) == 2


class TestContainer:
    def test_streams_roundtrip(self):
        streams = [make_stream(core=c, n=5 + c) for c in range(3)]
        blob = encode_streams(streams, benchmark="gups", seed=7, scale=0.5,
                              warmup_by_core={0: 2, 2: 3}, validated=True)
        container = decode_container(blob)
        assert container.benchmark == "gups"
        assert container.seed == 7 and container.scale == 0.5
        assert container.validated
        assert container.warmup_by_core == {0: 2, 2: 3}
        assert container.warmup_total == 5
        for orig, packed in zip(streams, container.streams):
            assert packed.validated
            assert list(packed.references) == list(orig.references)
        container.backing.close()

    def test_empty_stream_in_container(self):
        blob = encode_streams([CoreStream(0, 0, 1)])
        container = decode_container(blob)
        assert len(container.streams) == 1
        assert len(container.streams[0]) == 0
        container.backing.close()

    def test_container_size_is_columnar(self):
        n = 1000
        blob = encode_streams([make_stream(n=n)])
        assert len(blob) < n * BYTES_PER_RECORD + 200

    def test_workload_roundtrip(self):
        profile = get_profile("gups")
        workload = profile.build(num_cores=2, refs_per_core=100, seed=1,
                                 scale=0.05)
        container = decode_container(encode_workload(workload))
        rebuilt = container.workload()
        assert rebuilt.profile.name == "gups"
        assert rebuilt.warmup_by_core == workload.warmup_by_core
        assert rebuilt.seed == workload.seed
        assert rebuilt.scale == workload.scale
        for orig, packed in zip(workload.streams, rebuilt.streams):
            assert list(packed.references) == list(orig.references)
        container.backing.close()

    def test_workload_streams_are_views(self):
        profile = get_profile("gups")
        workload = profile.build(num_cores=1, refs_per_core=50, seed=1,
                                 scale=0.05)
        container = decode_container(encode_workload(workload,
                                                     validated=True))
        first = container.workload()
        first.streams[0].references = []  # de-pack one run's copy
        second = container.workload()
        assert len(second.streams[0]) == len(workload.streams[0])
        assert second.streams[0].validated
        container.backing.close()


class TestCorruptionDetection:
    def blob(self, validated=False):
        return encode_streams([make_stream(n=20)], benchmark="gups",
                              validated=validated)

    def test_every_byte_position_detected(self):
        blob = self.blob()
        # Exhaustive over the whole container: header, name, table and
        # payload damage must all fail loudly, never decode quietly.
        for position in range(len(blob)):
            damaged = bytearray(blob)
            damaged[position] ^= 0xFF
            if bytes(damaged) == blob:  # pragma: no cover
                continue
            with pytest.raises(PackedTraceError):
                decode_container(bytes(damaged))

    def test_flipped_validated_flag_detected(self):
        # Satellite 3's threat model: corruption must not grant the
        # validation waiver.
        blob = bytearray(self.blob(validated=False))
        flags_offset = struct.calcsize("<8sHH") - 2
        blob[flags_offset] |= 1
        with pytest.raises(PackedTraceError, match="checksum"):
            decode_container(bytes(blob))

    def test_truncation_detected(self):
        blob = self.blob()
        for cut in (0, 4, len(blob) // 2, len(blob) - 1):
            with pytest.raises(PackedTraceError):
                decode_container(blob[:cut])

    def test_bad_magic_message(self):
        with pytest.raises(PackedTraceError, match="magic"):
            decode_container(b"NOTATRACE" + self.blob()[9:])

    def test_version_skew_rejected(self):
        blob = bytearray(self.blob())
        blob[len(MAGIC):len(MAGIC) + 2] = struct.pack(
            "<H", FORMAT_VERSION + 1)
        with pytest.raises(PackedTraceError, match="version"):
            decode_container(bytes(blob))

    def test_error_names_path(self):
        with pytest.raises(PackedTraceError, match="wl.pwl"):
            decode_container(b"short", path="wl.pwl")


class TestFiles:
    def test_plain_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "wl.pwl")
        streams = [make_stream(core=c, n=10) for c in range(2)]
        save_packed(path, streams, benchmark="gcc", validated=True)
        container = load_packed(path)
        assert container.benchmark == "gcc" and container.validated
        for orig, packed in zip(streams, container.streams):
            assert list(packed.references) == list(orig.references)
        container.backing.close()

    def test_gzip_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "wl.pwl.gz")
        save_packed(path, [make_stream(n=10)])
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # actually gzipped
        container = load_packed(path)
        assert list(container.streams[0].references) == \
            list(make_stream(n=10).references)
        container.backing.close()

    def test_gzip_deterministic_bytes(self, tmp_path):
        a, b = str(tmp_path / "a.pwl.gz"), str(tmp_path / "b.pwl.gz")
        save_packed(a, [make_stream(n=10)])
        save_packed(b, [make_stream(n=10)])
        assert open(a, "rb").read() == open(b, "rb").read()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.pwl"
        path.write_bytes(b"")
        with pytest.raises(PackedTraceError, match="empty|truncated"):
            load_packed(str(path))

    def test_torn_gzip_rejected(self, tmp_path):
        path = str(tmp_path / "wl.pwl.gz")
        save_packed(path, [make_stream(n=500)])
        data = open(path, "rb").read()
        with open(path, "wb") as handle:
            handle.write(data[:len(data) // 2])
        with pytest.raises(PackedTraceError, match="gzip|checksum"):
            load_packed(path)

    def test_mmap_close_releases_cleanly(self, tmp_path):
        path = str(tmp_path / "wl.pwl")
        save_packed(path, [make_stream(n=100)])
        container = load_packed(path)
        stream = container.streams[0]
        assert stream.icounts is not None
        container.backing.close()
        container.backing.close()  # idempotent
        # Streams were defused, not left pointing into a closed map.
        assert stream.icounts is None
        assert len(stream) == 0

    def test_no_mmap_path(self, tmp_path):
        path = str(tmp_path / "wl.pwl")
        save_packed(path, [make_stream(n=10)])
        container = load_packed(path, use_mmap=False)
        assert len(container.streams[0]) == 10
        container.backing.close()


class TestValidatedFlagInteraction:
    def test_validate_stream_columnar_fast_path(self):
        packed = pack_stream(make_stream(n=10))
        validate_stream(packed)  # monotone icounts pass

    def test_validate_stream_columnar_rejects_backwards(self):
        refs = [MemoryReference(10, 0, False), MemoryReference(5, 0, False)]
        packed = pack_stream(CoreStream(0, 0, 1, refs))
        with pytest.raises(Exception, match="record 1"):
            validate_stream(packed)

    def test_depacked_corruption_caught(self):
        from repro.faults import corrupt_streams

        packed = pack_stream(make_stream(n=10), validated=True)
        corrupt_streams([packed])
        assert not packed.validated
        with pytest.raises(Exception, match="out of range|64-bit"):
            validate_stream(packed)
