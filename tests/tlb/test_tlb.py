"""Unit tests for the SRAM TLB."""

import pytest

from repro.common.config import TlbConfig
from repro.common.stats import StatGroup
from repro.tlb.entry import TlbEntry, TlbKey
from repro.tlb.tlb import SramTlb


def make_tlb(entries=64, ways=4):
    cfg = TlbConfig(name="t", entries=entries, ways=ways, latency_cycles=1)
    return SramTlb(cfg, StatGroup("t"))


def key(vpn, vm=0, asid=0, large=False):
    """Packed key — the representation SramTlb is keyed by."""
    return TlbKey(vm_id=vm, asid=asid, vpn=vpn, large=large).pack()


class TestLookupInsert:
    def test_cold_miss(self):
        t = make_tlb()
        assert t.lookup(key(1)) is None
        assert t.stats["misses"] == 1

    def test_insert_then_hit(self):
        t = make_tlb()
        t.insert(key(1), TlbEntry(ppn=7))
        entry = t.lookup(key(1))
        assert entry is not None and entry.ppn == 7
        assert t.stats["hits"] == 1

    def test_size_is_part_of_identity(self):
        t = make_tlb()
        t.insert(key(1, large=False), TlbEntry(ppn=7))
        assert t.lookup(key(1, large=True)) is None

    def test_vm_and_asid_are_part_of_identity(self):
        t = make_tlb()
        t.insert(key(1, vm=0, asid=0), TlbEntry(ppn=7))
        assert t.lookup(key(1, vm=1, asid=0)) is None
        assert t.lookup(key(1, vm=0, asid=1)) is None

    def test_reinsert_updates_entry(self):
        t = make_tlb()
        t.insert(key(1), TlbEntry(ppn=7))
        t.insert(key(1), TlbEntry(ppn=9))
        assert t.lookup(key(1)).ppn == 9
        assert len(t) == 1


class TestEviction:
    def test_set_conflict_evicts_lru(self):
        t = make_tlb(entries=8, ways=2)  # 4 sets
        sets = t.config.num_sets
        keys = [key(vpn) for vpn in (0, sets, 2 * sets)]  # same set
        t.insert(keys[0], TlbEntry(0))
        t.insert(keys[1], TlbEntry(1))
        t.lookup(keys[0])  # refresh
        evicted = t.insert(keys[2], TlbEntry(2))
        assert evicted == keys[1]
        assert t.contains(keys[0]) and not t.contains(keys[1])

    def test_capacity_never_exceeded(self):
        t = make_tlb(entries=16, ways=4)
        for vpn in range(100):
            t.insert(key(vpn), TlbEntry(vpn))
        assert len(t) <= 16

    def test_eviction_counter(self):
        t = make_tlb(entries=4, ways=1)
        for vpn in range(8):
            t.insert(key(vpn * 4), TlbEntry(vpn))  # force same-set inserts
        assert t.stats["evictions"] > 0


class TestInvalidation:
    def test_invalidate_page(self):
        t = make_tlb()
        t.insert(key(1), TlbEntry(7))
        assert t.invalidate_page(key(1))
        assert t.lookup(key(1)) is None

    def test_invalidate_missing_page(self):
        t = make_tlb()
        assert not t.invalidate_page(key(1))

    def test_invalidate_asid_spares_others(self):
        t = make_tlb()
        t.insert(key(1, asid=1), TlbEntry(1))
        t.insert(key(2, asid=2), TlbEntry(2))
        assert t.invalidate_asid(vm_id=0, asid=1) == 1
        assert t.contains(key(2, asid=2))

    def test_invalidate_vm(self):
        t = make_tlb()
        t.insert(key(1, vm=1, asid=1), TlbEntry(1))
        t.insert(key(2, vm=1, asid=2), TlbEntry(2))
        t.insert(key(3, vm=2), TlbEntry(3))
        assert t.invalidate_vm(1) == 2
        assert len(t) == 1

    def test_flush(self):
        t = make_tlb()
        for vpn in range(10):
            t.insert(key(vpn), TlbEntry(vpn))
        assert t.flush() == 10
        assert len(t) == 0


class TestIntrospection:
    def test_keys_lists_residents(self):
        t = make_tlb()
        t.insert(key(1), TlbEntry(1))
        t.insert(key(2), TlbEntry(2))
        assert set(t.keys()) == {TlbKey.from_packed(key(1)),
                                 TlbKey.from_packed(key(2))}

    def test_reach(self):
        t = make_tlb(entries=64)
        assert t.reach_bytes == 64 * 4096

    def test_hit_rate(self):
        t = make_tlb()
        t.insert(key(1), TlbEntry(1))
        t.lookup(key(1))
        t.lookup(key(2))
        assert t.hit_rate() == pytest.approx(0.5)


class TestTlbEntry:
    def test_translate_small(self):
        entry = TlbEntry(ppn=5)
        assert entry.translate(0x123, page_shift=12) == (5 << 12) | 0x123

    def test_translate_large(self):
        entry = TlbEntry(ppn=3)
        assert entry.translate(0x1FFFFF, page_shift=21) == (3 << 21) | 0x1FFFFF
