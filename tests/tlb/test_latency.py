"""Unit tests for the CACTI-like SRAM latency model (Figure 4 substrate)."""

import pytest

from repro.common import addr
from repro.tlb import latency


class TestAccessTime:
    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            latency.access_time(0)

    def test_monotonic_in_capacity(self):
        sizes = [16 * addr.KiB << i for i in range(11)]
        times = [latency.access_time(s) for s in sizes]
        assert times == sorted(times)
        assert len(set(times)) == len(times)


class TestNormalizedLatency:
    def test_reference_is_one(self):
        assert latency.normalized_latency(latency.REFERENCE_CAPACITY) == pytest.approx(1.0)

    def test_growth_is_superlinear_in_sqrt(self):
        # Quadrupling capacity should roughly double wire delay.
        x4 = latency.normalized_latency(64 * addr.KiB)
        assert 1.5 < x4 < 2.5

    def test_16mib_does_not_scale(self):
        # The paper's Figure 4 argument: MB-scale SRAM is order-of-
        # magnitude slower than the 16KiB reference.
        assert latency.normalized_latency(16 * addr.MiB) > 10


class TestLatencyCycles:
    def test_anchor_is_l2_tlb(self):
        # A 1536-entry TLB (~24KiB of 16B entries) costs ~9 cycles.
        assert latency.latency_cycles(latency.tlb_array_bytes(1536)) == 9

    def test_bigger_arrays_cost_more_cycles(self):
        small = latency.latency_cycles(latency.tlb_array_bytes(1536))
        big = latency.latency_cycles(latency.tlb_array_bytes(1536 * 8))
        assert big > small

    def test_never_below_one_cycle(self):
        assert latency.latency_cycles(64) >= 1


class TestSweep:
    def test_default_sweep_covers_16k_to_16m(self):
        points = latency.capacity_sweep()
        assert points[0][0] == 16 * addr.KiB
        assert points[-1][0] == 16 * addr.MiB
        assert len(points) == 11

    def test_custom_capacities(self):
        points = latency.capacity_sweep([addr.MiB])
        assert len(points) == 1 and points[0][0] == addr.MiB

    def test_figure4_series_labels(self):
        series = latency.figure4_series()
        assert "16KiB" in series and "16MiB" in series
        assert series["16KiB"] == pytest.approx(1.0)
