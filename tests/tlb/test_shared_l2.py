"""Unit tests for the Shared_L2 baseline TLB."""

from repro.common.config import SharedL2Config
from repro.common.stats import StatGroup
from repro.tlb.entry import TlbEntry, TlbKey
from repro.tlb.shared_l2 import SharedLastLevelTlb


def make_shared(num_cores=8):
    return SharedLastLevelTlb(SharedL2Config(), num_cores, StatGroup("shared"))


class TestSharedLastLevelTlb:
    def test_aggregate_capacity(self):
        shared = make_shared(8)
        assert shared.tlb_config.entries == 8 * 1536

    def test_latency_exceeds_private_l2_tlb(self):
        # Banked array + interconnect: must cost more than the 9-cycle
        # private L2 TLB, else sharing would be free.
        shared = make_shared(8)
        assert shared.latency > 9

    def test_monolithic_latency_grows_with_core_count(self):
        from repro.common.config import SharedL2Config
        from repro.common.stats import StatGroup
        from repro.tlb.shared_l2 import SharedLastLevelTlb

        def monolithic(cores):
            return SharedLastLevelTlb(SharedL2Config(banked=False), cores,
                                      StatGroup(f"s{cores}"))
        assert monolithic(32).latency > monolithic(4).latency

    def test_banked_latency_is_core_count_independent(self):
        assert make_shared(32).latency == make_shared(4).latency

    def test_insert_lookup_roundtrip(self):
        shared = make_shared(4)
        k = TlbKey(vm_id=0, asid=1, vpn=42, large=False).pack()
        shared.insert(k, TlbEntry(ppn=7))
        assert shared.lookup(k).ppn == 7

    def test_flush_and_len(self):
        shared = make_shared(2)
        for vpn in range(16):
            shared.insert(TlbKey(0, 0, vpn, False).pack(), TlbEntry(vpn))
        assert len(shared) == 16
        assert shared.flush() == 16
        assert len(shared) == 0

    def test_invalidate_page(self):
        shared = make_shared(2)
        k = TlbKey(0, 0, 5, False).pack()
        shared.insert(k, TlbEntry(1))
        assert shared.invalidate_page(k)
        assert shared.lookup(k) is None
