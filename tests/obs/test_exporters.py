"""Exporters: Prometheus text exposition and the self-contained dashboard."""

import json
import re

from repro.obs import CampaignTelemetry, MetricsRegistry
from repro.obs.exporters import (
    DASHBOARD_FILENAME,
    PROMETHEUS_FILENAME,
    dashboard_document,
    dashboard_html,
    prometheus_text,
    write_dashboard,
    write_prometheus,
)


class _Request:
    def __init__(self, benchmark="gups", scheme="pom"):
        self.benchmark = benchmark
        self.scheme = scheme


def populated_telemetry():
    """A hub with every metric kind exercised (no stream, no exporters)."""
    clock = [100.0]
    hub = CampaignTelemetry(clock=lambda: clock[0],
                            wall=lambda: 1700000000.0)
    hub.campaign_start(3, 2)
    hub.workloads_compiled(2, 1, 1, rejected=1)
    hub.predict("k1", 0.5)
    clock[0] += 2.0
    hub.run_finished("k1", _Request(), ok=True, attempts=1, wall_s=1.0,
                     cpu_s=0.8, workload_source="shm")
    hub.run_finished("k2", _Request("mcf", "tsb"), ok=False, attempts=2,
                     wall_s=0.2, error="WorkerCrash: signal 9")
    hub.run_restored("k3", _Request("mcf"))
    hub.heartbeat(queued=0, running=0)
    hub.campaign_end(simulated=2)
    return hub


class TestPrometheusText:
    def test_counters_with_help_type_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("pomtlb_runs_total", "Terminal states.",
                         state="ok").inc(4)
        registry.counter("pomtlb_runs_total", state="failed").inc()
        text = prometheus_text(registry)
        assert "# HELP pomtlb_runs_total Terminal states.\n" in text
        assert "# TYPE pomtlb_runs_total counter\n" in text
        assert 'pomtlb_runs_total{state="failed"} 1\n' in text
        assert 'pomtlb_runs_total{state="ok"} 4\n' in text

    def test_summary_exposes_count_and_sum(self):
        registry = MetricsRegistry()
        summary = registry.summary("pomtlb_wall_seconds", "Wall.",
                                   scheme="pom")
        summary.observe(0.25)
        summary.observe(0.5)
        text = prometheus_text(registry)
        assert "# TYPE pomtlb_wall_seconds summary\n" in text
        assert 'pomtlb_wall_seconds_count{scheme="pom"} 2\n' in text
        assert 'pomtlb_wall_seconds_sum{scheme="pom"} 0.75\n' in text

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", source='say "hi"\nback\\slash').inc()
        text = prometheus_text(registry)
        assert r'source="say \"hi\"\nback\\slash"' in text

    def test_integers_render_without_exponent_or_decimal(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(5.0)
        assert "\ng 5\n" in prometheus_text(registry)

    def test_format_parses_line_by_line(self):
        # Every non-comment line: <name>{labels}? <value>
        sample = re.compile(
            r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9.e+-]+$")
        text = prometheus_text(populated_telemetry().registry)
        for line in text.splitlines():
            if not line.startswith("#"):
                assert sample.match(line), line

    def test_write_prometheus_creates_named_file(self, tmp_path):
        path = write_prometheus(populated_telemetry().registry,
                                str(tmp_path / "sub"))
        assert path.endswith(PROMETHEUS_FILENAME)
        assert "pomtlb_campaign_runs_total" in open(path).read()


class TestDashboardDocument:
    def test_summary_reconciles_with_counts(self):
        doc = dashboard_document(populated_telemetry())
        summary = doc["summary"]
        assert summary["completed"] == 1
        assert summary["failed"] == 1
        assert summary["restored"] == 1
        assert summary["total_runs"] == 3
        assert summary["completed"] + summary["failed"] \
            + summary["restored"] == summary["total_runs"]
        assert summary["cache_hits"] == 1 and summary["cache_misses"] == 1

    def test_runs_sorted_and_carry_calibration(self):
        doc = dashboard_document(populated_telemetry())
        keys = [(r["benchmark"], r["scheme"]) for r in doc["runs"]]
        assert keys == sorted(keys)
        ok = [r for r in doc["runs"] if r["state"] == "ok"][0]
        assert ok["predicted_s"] == 0.5 and ok["wall_s"] == 1.0
        assert doc["lpt"]["runs"] == 1

    def test_document_is_json_serializable(self):
        doc = dashboard_document(populated_telemetry())
        assert json.loads(json.dumps(doc)) == json.loads(json.dumps(doc))


class TestDashboardHtml:
    def test_self_contained_no_external_references(self):
        html = dashboard_html(dashboard_document(populated_telemetry()))
        assert not re.search(r'(src|href)\s*=\s*["\'](https?:)?//', html)
        assert "<script" in html and "<style>" in html

    def test_inline_json_round_trips(self):
        hub = populated_telemetry()
        html = dashboard_html(dashboard_document(hub))
        match = re.search(
            r'<script type="application/json" id="data">(.*?)</script>',
            html, re.S)
        assert match
        parsed = json.loads(match.group(1))
        assert parsed == json.loads(
            json.dumps(dashboard_document(hub), sort_keys=True))

    def test_script_close_tag_escaped_in_payload(self):
        hub = populated_telemetry()
        hub.runs["k2"]["error"] = "boom </script><script>alert(1)"
        html = dashboard_html(dashboard_document(hub))
        payload = re.search(
            r'<script type="application/json" id="data">(.*?)</script>',
            html, re.S).group(1)
        assert "</script" not in payload
        assert "<\\/script" in payload

    def test_write_dashboard_creates_named_file(self, tmp_path):
        path = write_dashboard(populated_telemetry(), str(tmp_path))
        assert path.endswith(DASHBOARD_FILENAME)
        text = open(path).read()
        assert text.startswith("<!DOCTYPE html>")
        assert "__DATA__" not in text
