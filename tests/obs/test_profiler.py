"""Unit tests for the host-side self-time profiler."""

import time

import pytest

from repro.obs.profiler import SelfTimeProfiler


class Inner:
    def work(self):
        time.sleep(0.02)
        return "inner"


class Outer:
    def __init__(self, inner):
        self.inner = inner

    def work(self):
        time.sleep(0.01)
        return self.inner.work()


class TestWrapping:
    def test_wrapped_method_still_returns_its_value(self):
        profiler = SelfTimeProfiler()
        inner = Inner()
        profiler.wrap(inner, "work", "inner")
        assert inner.work() == "inner"
        profiler.uninstall()

    def test_calls_and_time_are_counted(self):
        profiler = SelfTimeProfiler()
        inner = Inner()
        profiler.wrap(inner, "work", "inner")
        inner.work()
        inner.work()
        profiler.uninstall()
        (row,) = profiler.rows()
        assert row["component"] == "inner"
        assert row["calls"] == 2
        assert row["total_s"] >= 0.04
        assert row["self_s"] == pytest.approx(row["total_s"])

    def test_self_time_excludes_wrapped_children(self):
        profiler = SelfTimeProfiler()
        inner = Inner()
        outer = Outer(inner)
        profiler.wrap(outer, "work", "outer")
        profiler.wrap(inner, "work", "inner")
        outer.work()
        profiler.uninstall()
        rows = {r["component"]: r for r in profiler.rows()}
        assert rows["outer"]["total_s"] >= 0.03
        assert rows["outer"]["self_s"] < rows["outer"]["total_s"] - 0.015
        assert rows["inner"]["self_s"] >= 0.015

    def test_self_pct_sums_to_100(self):
        profiler = SelfTimeProfiler()
        inner = Inner()
        outer = Outer(inner)
        profiler.wrap(outer, "work", "outer")
        profiler.wrap(inner, "work", "inner")
        outer.work()
        profiler.uninstall()
        assert sum(r["self_pct"] for r in profiler.rows()) == pytest.approx(100.0)

    def test_rows_sorted_by_self_time_descending(self):
        profiler = SelfTimeProfiler()
        inner = Inner()
        outer = Outer(inner)
        profiler.wrap(outer, "work", "outer")
        profiler.wrap(inner, "work", "inner")
        outer.work()
        profiler.uninstall()
        self_times = [r["self_s"] for r in profiler.rows()]
        assert self_times == sorted(self_times, reverse=True)

    def test_uninstall_restores_the_class_method(self):
        profiler = SelfTimeProfiler()
        inner = Inner()
        profiler.wrap(inner, "work", "inner")
        assert "work" in inner.__dict__      # instance shadow in place
        inner.work()
        profiler.uninstall()
        assert "work" not in inner.__dict__  # back to the class method
        assert inner.work() == "inner"       # not recorded any more
        (row,) = profiler.rows()
        assert row["calls"] == 1


class TestMachineInstall:
    def test_install_and_uninstall_on_a_machine(self):
        from repro.common.config import SystemConfig
        from repro.core.system import Machine
        from repro.workloads.suite import get_profile

        profile = get_profile("gups")
        workload = profile.build(num_cores=1, refs_per_core=200,
                                 seed=3, scale=0.02)
        machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                          thp_large_fraction=profile.thp_large_fraction,
                          seed=3)
        profiler = SelfTimeProfiler()
        profiler.install(machine)
        result = machine.run(workload.streams)
        profiler.uninstall()
        rows = {r["component"]: r for r in profiler.rows()}
        assert rows["mmu.translate"]["calls"] == result.references
        assert "cache.data_access" in rows
        assert "vmm.touch" in rows
        # wrappers are gone: instance dicts hold no shadows
        assert "translate" not in machine.scheme.__dict__
        assert "walk" not in machine.walkers.__dict__
