"""Unit tests for the JSONL and Chrome trace-event sinks."""

import json

from repro.obs import events
from repro.obs.replay import load_chrome, load_jsonl
from repro.obs.sinks import ChromeTraceSink, JsonlSink, ListSink
from repro.obs.tracer import EventTracer


def _emit_run(tracer, benchmark="x"):
    tracer.begin(core=0, vm=0, asid=1, vaddr=4096, scheme="pom")
    tracer.emit(events.TLB_PROBE, cycles=1, level="l1", hit=False)
    tracer.marker("stats_reset")
    tracer.end(cycles=12, l2_miss=True, penalty=11)


class TestJsonlSink:
    def test_roundtrip_through_file(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        reference = ListSink()
        sink = JsonlSink(path)
        tracer = EventTracer([sink, reference],
                             meta={"benchmark": "x", "scheme": "pom"})
        _emit_run(tracer)
        sink.close()
        assert load_jsonl(path) == reference.events

    def test_one_compact_object_per_line(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        sink = JsonlSink(path)
        tracer = EventTracer([sink])
        _emit_run(tracer)
        sink.close()
        lines = open(path).read().splitlines()
        assert len(lines) == 3     # probe + marker + translation summary
        for line in lines:
            json.loads(line)
            assert " " not in line  # compact separators

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(str(tmp_path / "t.jsonl"))
        sink.close()
        sink.close()


class TestAtomicPaths:
    """Path destinations are invisible until close (temp file + rename)."""

    def test_jsonl_appears_only_on_close(self, tmp_path):
        path = tmp_path / "t.jsonl"
        sink = JsonlSink(str(path))
        tracer = EventTracer([sink])
        _emit_run(tracer)
        assert not path.exists()          # still in the temp file
        sink.close()
        assert path.exists()
        assert not (tmp_path / "t.jsonl.tmp").exists()

    def test_chrome_appears_only_on_close(self, tmp_path):
        path = tmp_path / "t.json"
        sink = ChromeTraceSink(str(path))
        _emit_run(EventTracer([sink], meta={"benchmark": "x",
                                            "scheme": "pom"}))
        assert not path.exists()
        sink.close()
        json.load(open(path))             # a complete document, not a torn one

    def test_file_object_destination_not_renamed(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with open(path, "w") as handle:
            sink = JsonlSink(handle)
            _emit_run(EventTracer([sink]))
            sink.close()
        assert path.exists()
        assert not (tmp_path / "t.jsonl.tmp").exists()


class TestChromeTraceSink:
    def _trace(self, tmp_path, runs=1):
        path = str(tmp_path / "t.json")
        sink = ChromeTraceSink(path)
        for i in range(runs):
            tracer = EventTracer([sink], meta={"benchmark": f"b{i}",
                                               "scheme": "pom"})
            _emit_run(tracer)
        sink.close()
        return path

    def test_document_is_valid_trace_event_json(self, tmp_path):
        path = self._trace(tmp_path)
        document = json.load(open(path))
        assert isinstance(document["traceEvents"], list)
        for record in document["traceEvents"]:
            assert "ph" in record and "pid" in record
            if record["ph"] == "X":
                assert record["dur"] >= 1
                assert isinstance(record["args"], dict)

    def test_run_meta_becomes_process_per_run(self, tmp_path):
        records = load_chrome(self._trace(tmp_path, runs=2))
        names = [r for r in records if r.get("name") == "process_name"]
        assert len(names) == 2
        assert {r["pid"] for r in names} == {1, 2}
        # every slice belongs to one of the two processes
        assert {r["pid"] for r in records} <= {1, 2}

    def test_marker_is_an_instant_event(self, tmp_path):
        records = load_chrome(self._trace(tmp_path))
        markers = [r for r in records if r["name"] == events.MARKER]
        assert markers and all(r["ph"] == "i" for r in markers)
        assert all("dur" not in r for r in markers)

    def test_bookkeeping_fields_kept_out_of_args(self, tmp_path):
        records = load_chrome(self._trace(tmp_path))
        probe = next(r for r in records if r["name"] == events.TLB_PROBE)
        assert "vaddr" not in probe["args"]
        assert probe["args"]["level"] == "l1"
        assert probe["tid"] == 0


class TestSharedSink:
    def test_two_tracers_interleave_into_one_sink(self):
        sink = ListSink()
        a = EventTracer([sink], meta={"benchmark": "a", "scheme": "pom"})
        b = EventTracer([sink], meta={"benchmark": "b", "scheme": "tsb"})
        _emit_run(a)
        _emit_run(b)
        metas = [e for e in sink.events if e["type"] == events.RUN_META]
        assert [m["benchmark"] for m in metas] == ["a", "b"]
