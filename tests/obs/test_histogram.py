"""Unit tests for the log-bucketed latency histogram."""

import pytest

from repro.obs.histogram import LogHistogram


class TestEmpty:
    def test_empty_percentiles_are_zero(self):
        h = LogHistogram("t")
        assert h.count == 0
        assert h.percentile(50) == 0.0
        assert h.p50 == 0.0 and h.p99 == 0.0
        assert h.mean == 0.0

    def test_empty_as_dict(self):
        d = LogHistogram("t").as_dict()
        assert d["count"] == 0
        assert d["min"] == 0 and d["max"] == 0
        assert d["buckets"] == []


class TestSingleSample:
    def test_all_percentiles_equal_the_sample(self):
        h = LogHistogram()
        h.record(37)
        for p in (0, 1, 50, 90, 99, 100):
            assert h.percentile(p) == 37.0
        assert h.min == 37 and h.max == 37
        assert h.mean == 37.0

    def test_zero_value_lands_in_bucket_zero(self):
        h = LogHistogram()
        h.record(0)
        assert h.buckets() == [[0, 0, 1]]
        assert h.p50 == 0.0


class TestBucketBoundaries:
    def test_powers_of_two_open_new_buckets(self):
        h = LogHistogram()
        for v in (1, 2, 4, 8):
            h.record(v)
        # bucket b holds [2**(b-1), 2**b - 1]
        assert h.buckets() == [[1, 1, 1], [2, 3, 1], [4, 7, 1], [8, 15, 1]]

    def test_bucket_upper_edge_stays_in_bucket(self):
        h = LogHistogram()
        h.record(3)  # top of bucket 2 ([2, 3])
        h.record(4)  # bottom of bucket 3 ([4, 7])
        assert h.buckets() == [[2, 3, 1], [4, 7, 1]]

    def test_percentile_clamped_to_observed_range(self):
        h = LogHistogram()
        for _ in range(100):
            h.record(5)  # bucket [4, 7]; interpolation alone would drift
        assert h.percentile(50) == 5.0
        assert h.percentile(99) == 5.0
        assert h.percentile(100) == 5.0

    def test_percentile_monotone_in_p(self):
        h = LogHistogram()
        for v in (1, 2, 3, 10, 20, 100, 500, 1000):
            h.record(v)
        quantiles = [h.percentile(p) for p in (0, 25, 50, 75, 90, 99, 100)]
        assert quantiles == sorted(quantiles)
        assert quantiles[-1] == 1000.0

    def test_out_of_range_percentile_raises(self):
        h = LogHistogram()
        h.record(1)
        with pytest.raises(ValueError):
            h.percentile(101)
        with pytest.raises(ValueError):
            h.percentile(-1)

    def test_negative_values_clamp_to_zero(self):
        h = LogHistogram()
        h.record(-5)
        assert h.min == 0 and h.max == 0
        assert h.buckets() == [[0, 0, 1]]


class TestLifecycle:
    def test_reset_forgets_everything(self):
        h = LogHistogram("t")
        h.record(9)
        h.reset()
        assert h.count == 0 and h.total == 0
        assert h.min is None and h.max == 0
        assert h.buckets() == []
        assert h.percentile(50) == 0.0

    def test_merge_accumulates(self):
        a, b = LogHistogram(), LogHistogram()
        a.record(2)
        a.record(4)
        b.record(100)
        a.merge(b)
        assert a.count == 3
        assert a.total == 106
        assert a.min == 2 and a.max == 100
        assert a.percentile(100) == 100.0

    def test_merge_empty_is_identity(self):
        a = LogHistogram()
        a.record(7)
        before = a.as_dict()
        a.merge(LogHistogram())
        assert a.as_dict() == before

    def test_merge_into_empty(self):
        a, b = LogHistogram(), LogHistogram()
        b.record(3)
        a.merge(b)
        assert a.count == 1 and a.min == 3 and a.max == 3

    def test_as_dict_is_json_ready(self):
        import json
        h = LogHistogram("lat")
        for v in (1, 5, 1000):
            h.record(v)
        d = json.loads(json.dumps(h.as_dict()))
        assert d["name"] == "lat"
        assert d["count"] == 3
        assert d["p50"] >= d["min"]
