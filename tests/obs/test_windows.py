"""Unit tests for time-windowed metrics."""

import json

import pytest

from repro.common.stats import StatRegistry
from repro.obs.windows import WindowedMetrics


def _registry():
    reg = StatRegistry()
    pom = reg.group("pom_tlb")
    for key in ("hits_small", "hits_large", "misses_small", "misses_large"):
        pom.set(key, 0)
    pred = reg.group("core0.predictor")
    for key in ("size_correct", "size_wrong", "bypass_correct",
                "bypass_wrong"):
        pred.set(key, 0)
    return reg


class TestWindowing:
    def test_window_must_be_positive(self):
        with pytest.raises(ValueError):
            WindowedMetrics(0)

    def test_rows_close_every_k_references(self):
        w = WindowedMetrics(10)
        for _ in range(35):
            w.record(cycles=2, l2_miss=False, penalty=0)
        assert len(w.rows) == 3
        w.finish()
        assert len(w.rows) == 4
        assert w.rows[-1]["partial"] is True
        assert w.rows[-1]["references"] == 5
        assert all("partial" not in row for row in w.rows[:3])

    def test_finish_without_pending_adds_nothing(self):
        w = WindowedMetrics(5)
        for _ in range(5):
            w.record(1, False, 0)
        w.finish()
        assert len(w.rows) == 1

    def test_per_window_averages(self):
        w = WindowedMetrics(4)
        for cycles, miss, penalty in ((1, False, 0), (1, False, 0),
                                      (101, True, 100), (1, False, 0)):
            w.record(cycles, miss, penalty)
        row = w.rows[0]
        assert row["avg_translation_cycles"] == pytest.approx(26.0)
        assert row["l2_miss_ratio"] == pytest.approx(0.25)
        assert row["avg_penalty_per_miss"] == pytest.approx(100.0)

    def test_structure_counters_are_deltas_per_window(self):
        reg = _registry()
        w = WindowedMetrics(2, stats=reg)
        reg["pom_tlb"].inc("hits_small", 3)
        reg["pom_tlb"].inc("misses_small", 1)
        w.record(1, False, 0)
        w.record(1, False, 0)      # closes window 0
        reg["pom_tlb"].inc("misses_small", 3)
        w.record(1, False, 0)
        w.record(1, False, 0)      # closes window 1
        assert w.rows[0]["pom_hit_ratio"] == pytest.approx(0.75)
        assert w.rows[1]["pom_hit_ratio"] == pytest.approx(0.0)

    def test_predictor_accuracy_from_registry(self):
        reg = _registry()
        w = WindowedMetrics(1, stats=reg)
        reg["core0.predictor"].inc("bypass_correct", 9)
        reg["core0.predictor"].inc("bypass_wrong", 1)
        w.record(1, False, 0)
        assert w.rows[0]["bypass_accuracy"] == pytest.approx(0.9)

    def test_reset_drops_rows_and_rebaselines(self):
        reg = _registry()
        w = WindowedMetrics(1, stats=reg)
        reg["pom_tlb"].inc("hits_small", 5)
        w.record(1, False, 0)
        assert len(w.rows) == 1
        w.reset()
        assert w.rows == []
        # post-reset window must not see pre-reset counter history
        reg["pom_tlb"].inc("misses_small", 5)
        w.record(1, False, 0)
        assert w.rows[0]["pom_hit_ratio"] == pytest.approx(0.0)

    def test_as_dict_and_json(self):
        w = WindowedMetrics(2)
        w.record(1, False, 0)
        w.finish()
        d = json.loads(w.to_json())
        assert d["window"] == 2
        assert len(d["rows"]) == 1
