"""Unit tests for the event tracer and its null object."""

import pytest

from repro.obs import events
from repro.obs.sinks import ListSink
from repro.obs.tracer import NULL_TRACER, EventTracer, NullTracer


class TestNullTracer:
    def test_flags_are_false_class_attributes(self):
        assert NullTracer.enabled is False
        assert NullTracer.active is False
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.active is False

    def test_all_methods_are_noops(self):
        NULL_TRACER.begin(core=0)
        NULL_TRACER.emit("tlb_probe", cycles=1)
        NULL_TRACER.end(cycles=10)
        NULL_TRACER.marker("x")
        NULL_TRACER.close()
        assert NULL_TRACER.active is False


class TestSampling:
    def test_sample_one_traces_every_translation(self):
        sink = ListSink()
        tr = EventTracer([sink], sample=1)
        for i in range(5):
            tr.begin(core=0, vaddr=i)
            assert tr.active
            tr.end(cycles=1)
        assert tr.sampled == 5
        assert len([e for e in sink.events
                    if e["type"] == events.TRANSLATION]) == 5

    def test_sample_n_traces_first_of_every_n(self):
        tr = EventTracer(sample=3)
        picked = []
        for i in range(9):
            tr.begin(vaddr=i)
            picked.append(tr.active)
            tr.end(cycles=1)
        assert picked == [True, False, False] * 3
        assert tr.translations == 9
        assert tr.sampled == 3

    def test_unsampled_translation_emits_nothing(self):
        sink = ListSink()
        tr = EventTracer([sink], sample=2)
        tr.begin(vaddr=1)
        tr.end(cycles=1)
        n = len(sink.events)
        tr.begin(vaddr=2)       # unsampled -> active is False
        if tr.active:           # the gating contract every call site follows
            tr.emit(events.TLB_PROBE, cycles=1, level="l1", hit=True)
        tr.end(cycles=1)        # end() itself checks active
        assert len(sink.events) == n

    def test_invalid_sample_rejected(self):
        with pytest.raises(ValueError):
            EventTracer(sample=0)


class TestEventContents:
    def test_context_merged_into_every_event(self):
        sink = ListSink()
        tr = EventTracer([sink])
        tr.begin(core=3, vm=1, asid=7, vaddr=4096, scheme="pom")
        tr.emit(events.TLB_PROBE, cycles=1, level="l1", hit=False)
        tr.end(cycles=11, l2_miss=False, penalty=0)
        for event in sink.events:
            assert event["core"] == 3
            assert event["scheme"] == "pom"

    def test_clock_advances_and_resyncs_on_end(self):
        sink = ListSink()
        tr = EventTracer([sink])
        tr.begin(vaddr=0)
        tr.emit(events.TLB_PROBE, cycles=4, level="l1", hit=False)
        tr.emit(events.TLB_PROBE, cycles=9, level="l2", hit=False)
        tr.end(cycles=100, l2_miss=True, penalty=87)
        probe1, probe2, summary = sink.events
        assert probe1["ts"] == 0
        assert probe2["ts"] == 4
        assert summary["ts"] == 0          # stamped at begin, spans the steps
        assert summary["cycles"] == 100
        assert tr.now == 100               # resynced to begin + total

    def test_sequence_numbers_are_strictly_increasing(self):
        sink = ListSink()
        tr = EventTracer([sink], meta={"benchmark": "x", "scheme": "pom"})
        tr.begin(vaddr=0)
        tr.emit(events.TLB_PROBE, cycles=1, level="l1", hit=True)
        tr.end(cycles=1)
        seqs = [e["seq"] for e in sink.events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)

    def test_emitted_events_validate(self):
        sink = ListSink()
        tr = EventTracer([sink], meta={"benchmark": "x", "scheme": "pom"})
        tr.begin(core=0, vm=0, asid=1, vaddr=0, scheme="pom")
        tr.emit(events.TLB_PROBE, cycles=1, level="l1", hit=False)
        tr.marker("stats_reset")
        tr.end(cycles=5, l2_miss=False, penalty=0)
        for event in sink.events:
            events.validate_event(event)

    def test_validate_rejects_missing_field(self):
        with pytest.raises(ValueError):
            events.validate_event({"type": events.TLB_PROBE, "ts": 0,
                                   "seq": 0, "cycles": 1})   # no level/hit

    def test_validate_rejects_unknown_type(self):
        with pytest.raises(ValueError):
            events.validate_event({"type": "bogus", "ts": 0, "seq": 0})


class TestMarkersAndRing:
    def test_marker_written_even_when_inactive(self):
        sink = ListSink()
        tr = EventTracer([sink], sample=2)
        tr.begin(vaddr=0)
        tr.end(cycles=1)
        tr.begin(vaddr=1)       # unsampled -> inactive
        tr.marker("stats_reset")
        tr.end(cycles=1)
        assert any(e["type"] == events.MARKER for e in sink.events)

    def test_ring_buffer_is_bounded_and_keeps_newest(self):
        tr = EventTracer(ring_capacity=5)
        for i in range(20):
            tr.begin(vaddr=i)
            tr.end(cycles=1, l2_miss=False, penalty=0)
        assert len(tr.ring) == 5
        assert tr.ring[-1]["vaddr"] == 19

    def test_no_ring_by_default(self):
        assert EventTracer().ring is None

    def test_run_meta_written_immediately(self):
        sink = ListSink()
        EventTracer([sink], sample=4, meta={"benchmark": "mcf",
                                            "scheme": "tsb"})
        assert sink.events[0]["type"] == events.RUN_META
        assert sink.events[0]["benchmark"] == "mcf"
        assert sink.events[0]["sample"] == 4
