"""Campaign telemetry: registry, status-stream schema, heartbeats, LPT."""

import json

import pytest

from repro.obs import (
    NO_TELEMETRY,
    CampaignTelemetry,
    LptAccuracy,
    MetricsRegistry,
    NullTelemetry,
    StatusSnapshot,
)
from repro.obs.telemetry import (
    RUN_END_STATES,
    STATUS_EVENT_FIELDS,
    STATUS_VERSION,
    render_top,
    validate_status_event,
)


class _Request:
    """Duck-typed stand-in for a RunRequest."""

    def __init__(self, benchmark="gups", scheme="pom"):
        self.benchmark = benchmark
        self.scheme = scheme


class _FakeClock:
    """Deterministic monotonic clock the tests advance by hand."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def telemetry(tmp_path, heartbeat_s=1.0, export_dir=""):
    clock = _FakeClock()
    hub = CampaignTelemetry(status_path=str(tmp_path / "status.ndjson"),
                            export_dir=export_dir,
                            heartbeat_s=heartbeat_s,
                            clock=clock, wall=lambda: 1700000000.0)
    return hub, clock


def stream_events(tmp_path):
    path = tmp_path / "status.ndjson"
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestMetricsRegistry:
    def test_counter_gauge_summary(self):
        registry = MetricsRegistry()
        registry.counter("c", "help").inc()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        summary = registry.summary("s")
        summary.observe(1.0)
        summary.observe(3.0)
        assert registry.counter("c").value == 3
        assert registry.gauge("g").value == 1.5
        assert summary.count == 2 and summary.mean == 2.0
        assert summary.minimum == 1.0 and summary.maximum == 3.0

    def test_labels_create_distinct_series(self):
        registry = MetricsRegistry()
        registry.counter("runs", state="ok").inc()
        registry.counter("runs", state="failed").inc(2)
        assert registry.counter("runs", state="ok").value == 1
        assert registry.counter("runs", state="failed").value == 2

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_as_dict_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("runs", "Terminal states.", state="ok").inc(4)
        registry.summary("wall").observe(0.5)
        snapshot = json.loads(json.dumps(registry.as_dict()))
        assert snapshot["runs"]["series"][0]["value"] == 4
        assert snapshot["wall"]["series"][0]["count"] == 1


class TestNullTelemetry:
    def test_disabled_and_inert(self, tmp_path):
        assert NO_TELEMETRY.enabled is False
        assert isinstance(NO_TELEMETRY, NullTelemetry)
        # Every hook is callable and returns None; nothing is written.
        NO_TELEMETRY.campaign_start(5, 2)
        NO_TELEMETRY.run_queued("k", _Request())
        NO_TELEMETRY.run_finished("k", _Request(), ok=True, attempts=1,
                                  wall_s=0.1)
        NO_TELEMETRY.sample(queued=1, running=1)
        NO_TELEMETRY.campaign_end()
        assert NO_TELEMETRY.export() == []
        NO_TELEMETRY.close()
        assert list(tmp_path.iterdir()) == []

    def test_campaign_telemetry_is_a_null_telemetry(self, tmp_path):
        hub, _ = telemetry(tmp_path)
        assert isinstance(hub, NullTelemetry)
        assert hub.enabled is True
        hub.close()


class TestStatusSchema:
    """Golden-schema check: every line the hub emits validates."""

    def test_full_lifecycle_stream_validates(self, tmp_path):
        hub, clock = telemetry(tmp_path)
        request = _Request()
        hub.campaign_start(2, 2)
        hub.workloads_compiled(2, 1, 1)
        hub.predict("k1", 0.5)
        hub.run_queued("k1", request)
        hub.run_dispatched("k1", request, attempt=1, mode="pool")
        clock.advance(0.4)
        hub.run_retry("k1", request, attempt=1, error="RunTimeout: slow",
                      delay_s=0.25)
        hub.run_dispatched("k1", request, attempt=2, mode="pool")
        clock.advance(0.6)
        hub.run_finished("k1", request, ok=True, attempts=2, wall_s=0.6,
                         cpu_s=0.5, workload_source="shm")
        hub.run_restored("k2", _Request("mcf", "tsb"))
        hub.heartbeat(queued=0, running=0)
        hub.run_finished("k3", _Request("mcf"), ok=False, attempts=3,
                         wall_s=0.2, error="WorkerCrash: signal 9")
        hub.campaign_end(simulated=1)
        hub.close()

        events = stream_events(tmp_path)
        for event in events:
            validate_status_event(event)  # raises on any drift
        assert [e["event"] for e in events] == [
            "campaign_start", "workloads", "run_start", "run_retry",
            "run_start", "run_end", "run_end", "heartbeat", "run_end",
            "campaign_end"]
        # The monotonic offsets never go backwards.
        offsets = [e["t"] for e in events]
        assert offsets == sorted(offsets)

    def test_validate_rejects_bad_version(self):
        with pytest.raises(ValueError, match="version"):
            validate_status_event({"v": 99, "event": "campaign_start",
                                   "t": 0, "ts": 0, "total_runs": 1,
                                   "workers": 1})

    def test_validate_rejects_unknown_event(self):
        with pytest.raises(ValueError, match="unknown"):
            validate_status_event({"v": STATUS_VERSION, "event": "nope",
                                   "t": 0, "ts": 0})

    def test_validate_rejects_missing_field(self):
        with pytest.raises(ValueError, match="total_runs"):
            validate_status_event({"v": STATUS_VERSION,
                                   "event": "campaign_start",
                                   "t": 0, "ts": 0, "workers": 2})

    def test_validate_rejects_bad_terminal_state(self):
        event = {"v": STATUS_VERSION, "event": "run_end", "t": 0, "ts": 0,
                 "key": "k", "benchmark": "gups", "scheme": "pom",
                 "state": "exploded", "attempts": 1, "wall_s": 0.1,
                 "cpu_s": None, "predicted_s": None, "error": None}
        with pytest.raises(ValueError, match="exploded"):
            validate_status_event(event)
        for state in RUN_END_STATES:
            validate_status_event({**event, "state": state})

    def test_every_documented_event_has_required_fields(self):
        # The schema table itself is part of the contract EXPERIMENTS.md
        # documents; a rename here must be a deliberate version bump.
        assert set(STATUS_EVENT_FIELDS) == {
            "campaign_start", "workloads", "run_start", "run_retry",
            "run_end", "heartbeat", "campaign_end"}
        assert STATUS_VERSION == 1


class TestHeartbeat:
    def test_sample_rate_limited_by_heartbeat_interval(self, tmp_path):
        hub, clock = telemetry(tmp_path, heartbeat_s=1.0)
        hub.campaign_start(4, 2)
        for _ in range(10):  # 10 polls in 0.5s: under the cadence
            clock.advance(0.05)
            hub.sample(queued=4, running=2)
        assert len(hub.heartbeats) == 0
        clock.advance(0.6)  # crosses the 1s boundary
        hub.sample(queued=3, running=2)
        assert len(hub.heartbeats) == 1
        for _ in range(6):  # 3 more seconds: exactly 3 more beats
            clock.advance(0.5)
            hub.sample(queued=2, running=2)
        assert len(hub.heartbeats) == 4
        hub.close()

    def test_busy_fraction_bounded_and_computed(self, tmp_path):
        hub, clock = telemetry(tmp_path)
        hub.campaign_start(2, 2)
        request = _Request()
        clock.advance(10.0)
        hub.run_finished("k1", request, ok=True, attempts=1, wall_s=5.0)
        hub.heartbeat(queued=0, running=1)
        # 5 busy seconds across 2 workers * 10 elapsed = 25%.
        assert hub.heartbeats[-1]["busy_frac"] == pytest.approx(0.25)
        hub.run_finished("k2", request, ok=True, attempts=1, wall_s=1000.0)
        hub.heartbeat(queued=0, running=0)
        assert hub.heartbeats[-1]["busy_frac"] == 1.0  # clamped
        hub.close()


class TestLptAccuracy:
    def test_mape_and_bias(self):
        lpt = LptAccuracy()
        lpt.predict("a", 1.0)
        lpt.predict("b", 2.0)
        lpt.observe("a", "gups", "pom", 1.5)   # +50%
        lpt.observe("b", "mcf", "pom", 1.0)    # -50%
        summary = lpt.summary()
        assert summary["runs"] == 2
        assert summary["mape"] == pytest.approx(0.5)
        assert summary["bias"] == pytest.approx(0.0)

    def test_unpredicted_and_degenerate_observations_ignored(self):
        lpt = LptAccuracy()
        lpt.observe("missing", "gups", "pom", 1.0)
        lpt.predict("zero", 0.0)
        lpt.observe("zero", "gups", "pom", 1.0)
        lpt.predict("neg", 1.0)
        lpt.observe("neg", "gups", "pom", -0.1)
        assert lpt.summary() == {"runs": 0, "mape": None, "bias": None}

    def test_hub_records_calibration_only_for_ok_runs(self, tmp_path):
        hub, _ = telemetry(tmp_path)
        request = _Request()
        hub.predict("k1", 0.5)
        hub.predict("k2", 0.5)
        hub.run_finished("k1", request, ok=True, attempts=1, wall_s=1.0)
        hub.run_finished("k2", request, ok=False, attempts=1, wall_s=1.0,
                         error="WorkerCrash: boom")
        assert hub.lpt.summary()["runs"] == 1
        assert hub.lpt.records[0]["error"] == pytest.approx(1.0)
        hub.close()


class TestSnapshotAndTop:
    def test_snapshot_replays_stream(self, tmp_path):
        hub, clock = telemetry(tmp_path)
        request = _Request()
        hub.campaign_start(3, 2)
        hub.workloads_compiled(3, 2, 1)
        hub.predict("k1", 0.5)
        hub.run_dispatched("k1", request, attempt=1, mode="pool")
        clock.advance(0.6)
        hub.run_finished("k1", request, ok=True, attempts=1, wall_s=0.6)
        hub.run_restored("k2", request)
        hub.run_finished("k3", request, ok=False, attempts=2, wall_s=0.1,
                         error="WorkerCrash: signal 9")
        hub.campaign_end(simulated=2)
        hub.close()

        snapshot = StatusSnapshot()
        for line in (tmp_path / "status.ndjson").read_text().splitlines():
            snapshot.apply_line(line)
        assert snapshot.finished
        assert (snapshot.completed, snapshot.failed, snapshot.restored) == \
            (1, 1, 1)
        assert snapshot.done == snapshot.total_runs == 3
        assert snapshot.cache_hits == 2 and snapshot.cache_misses == 1
        assert snapshot.running == {}
        assert snapshot.lpt.summary()["runs"] == 1
        assert snapshot.errors == ["(gups, pom): WorkerCrash: signal 9"]

        view = render_top(snapshot)
        assert "3/3 runs" in view
        assert "1 ok, 1 failed, 1 restored" in view
        assert "100%" in view
        assert "WorkerCrash" in view

    def test_snapshot_tolerates_garbage_lines(self):
        snapshot = StatusSnapshot()
        snapshot.apply_line("")
        snapshot.apply_line("{truncated")
        snapshot.apply_line('{"v": 99, "event": "campaign_start"}')
        snapshot.apply_line("[1, 2, 3]")
        assert snapshot.total_runs == 0 and not snapshot.finished

    def test_render_top_mid_flight(self, tmp_path):
        snapshot = StatusSnapshot()
        snapshot.apply({"v": 1, "event": "campaign_start", "t": 0.0,
                        "ts": 0.0, "total_runs": 4, "workers": 2})
        snapshot.apply({"v": 1, "event": "run_start", "t": 0.1, "ts": 0.1,
                        "key": "k1", "benchmark": "gups", "scheme": "pom",
                        "attempt": 1, "mode": "pool", "predicted_s": 0.5})
        view = render_top(snapshot)
        assert "[running]" in view
        assert "(gups, pom) attempt 1 [pool]" in view


class TestStreamHygiene:
    def test_no_stream_without_status_path(self):
        hub = CampaignTelemetry()
        hub.campaign_start(1, 1)
        hub.campaign_end()
        hub.close()  # nothing to close; must not raise

    def test_close_is_idempotent(self, tmp_path):
        hub, _ = telemetry(tmp_path)
        hub.close()
        hub.close()

    def test_lines_are_compact_sorted_json(self, tmp_path):
        hub, _ = telemetry(tmp_path)
        hub.campaign_start(1, 1)
        hub.close()
        line = (tmp_path / "status.ndjson").read_text().splitlines()[0]
        event = json.loads(line)
        assert line == json.dumps(event, sort_keys=True,
                                  separators=(",", ":"))
