"""Trace/counter agreement: a sample=1 trace recomputes the aggregates.

This is the observability layer's correctness contract (and an ISSUE
acceptance criterion): replaying an unsampled JSONL trace must yield the
same counters the :class:`~repro.common.stats.StatRegistry` reports.
"""

import pytest

from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.obs import EventTracer, ListSink, Observability
from repro.obs.replay import load_jsonl, replay_counters
from repro.obs.sinks import JsonlSink
from repro.workloads.suite import get_profile

SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")


def _traced_run(scheme, warmup=0, benchmark="mcf"):
    profile = get_profile(benchmark)
    workload = profile.build(num_cores=2, refs_per_core=1200,
                             seed=11, scale=0.1)
    sink = ListSink()
    obs = Observability(tracer=EventTracer([sink], sample=1))
    machine = Machine(SystemConfig(num_cores=2), scheme=scheme,
                      thp_large_fraction=profile.thp_large_fraction,
                      seed=11, obs=obs)
    result = machine.run(workload.streams, warmup_references=warmup)
    return machine, result, sink.events


class TestReplayAgreement:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_replay_matches_registry(self, scheme):
        machine, result, trace = _traced_run(scheme)
        replayed = replay_counters(trace)
        mmu = machine.stats["mmu"]

        assert replayed["translations"] == result.references
        assert replayed["l2_tlb_misses"] == result.l2_tlb_misses
        assert replayed["penalty_cycles"] == result.penalty_cycles
        assert replayed["page_walks"] == int(mmu["page_walks"])
        assert replayed["page_walk_cycles"] == int(mmu["page_walk_cycles"])

    @pytest.mark.parametrize("scheme", ("pom", "pom_skewed"))
    def test_pom_fetch_sources_match_flow_stats(self, scheme):
        machine, result, trace = _traced_run(scheme)
        assert result.l2_tlb_misses > 0  # the run must exercise the miss path
        replayed = replay_counters(trace)
        flow = machine.stats["pom_flow"]
        for source, count in replayed["pom_fetches"].items():
            assert count == int(flow[f"set_from_{source}"]), source

    @pytest.mark.parametrize("scheme", ("pom", "pom_skewed"))
    def test_dram_events_match_channel_stats(self, scheme):
        machine, _, trace = _traced_run(scheme)
        replayed = replay_counters(trace)
        dram = machine.stats["stacked_dram"]
        assert replayed["dram_accesses"] == int(dram["accesses"])
        outcomes = replayed["dram_row_outcomes"]
        assert outcomes.get("hit", 0) == int(dram["row_hits"])
        assert outcomes.get("miss", 0) == int(dram["row_misses"])
        assert outcomes.get("conflict", 0) == int(dram["row_conflicts"])

    def test_warmup_reset_marker_scopes_the_replay(self):
        machine, result, trace = _traced_run("pom", warmup=400)
        assert any(e["type"] == "marker" and e["name"] == "stats_reset"
                   for e in trace)
        replayed = replay_counters(trace)
        # only post-warmup events count, same as the registry reset
        assert replayed["translations"] == result.references
        assert replayed["l2_tlb_misses"] == result.l2_tlb_misses
        assert replayed["penalty_cycles"] == result.penalty_cycles

    def test_jsonl_file_roundtrip_agrees(self, tmp_path):
        profile = get_profile("gups")
        workload = profile.build(num_cores=1, refs_per_core=600,
                                 seed=4, scale=0.1)
        path = str(tmp_path / "trace.jsonl")
        sink = JsonlSink(path)
        obs = Observability(tracer=EventTracer(
            [sink], sample=1, meta={"benchmark": "gups", "scheme": "pom"}))
        machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                          thp_large_fraction=profile.thp_large_fraction,
                          seed=4, obs=obs)
        result = machine.run(workload.streams)
        sink.close()
        replayed = replay_counters(load_jsonl(path))  # validates every event
        assert replayed["translations"] == result.references
        assert replayed["l2_tlb_misses"] == result.l2_tlb_misses
        assert replayed["penalty_cycles"] == result.penalty_cycles


class TestSampledTraces:
    def test_sampling_reduces_events_but_stays_valid(self):
        profile = get_profile("gups")
        workload = profile.build(num_cores=1, refs_per_core=600,
                                 seed=4, scale=0.1)
        sizes = {}
        for sample in (1, 10):
            sink = ListSink()
            tracer = EventTracer([sink], sample=sample)
            machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                              thp_large_fraction=profile.thp_large_fraction,
                              seed=4, obs=Observability(tracer=tracer))
            machine.run(workload.streams)
            sizes[sample] = len(sink.events)
            translations = [e for e in sink.events
                            if e["type"] == "translation"]
            # first of every N translations is sampled
            assert len(translations) == -(-tracer.translations // sample)
        assert sizes[10] < sizes[1] / 5
