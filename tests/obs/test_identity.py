"""Observability must never change what the simulator computes.

ISSUE acceptance criterion: running with tracing disabled produces a
``SimulationResult`` bit-identical to the seed simulator's — and running
with tracing *enabled* must not change the simulated outcome either,
only add data on the side.
"""

from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.obs import EventTracer, ListSink, Observability
from repro.workloads.suite import get_profile

SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")


def _run(scheme, obs):
    profile = get_profile("astar")
    workload = profile.build(num_cores=2, refs_per_core=700,
                             seed=6, scale=0.05)
    machine = Machine(SystemConfig(num_cores=2), scheme=scheme,
                      thp_large_fraction=profile.thp_large_fraction,
                      seed=6, obs=obs)
    result = machine.run(workload.streams,
                         warmup_references=workload.warmup_references)
    return machine.stats.as_nested_dict(), result


class TestObservabilityIsPure:
    def test_disabled_default_and_traced_runs_agree(self):
        for scheme in SCHEMES:
            outcomes = []
            for obs in (Observability.disabled(),        # seed hot path
                        None,                             # machine default
                        Observability(
                            tracer=EventTracer([ListSink()], sample=1),
                            window=100)):
                stats, result = _run(scheme, obs)
                outcomes.append((stats, result.references,
                                 result.l2_tlb_misses, result.penalty_cycles,
                                 result.page_walks, result.instructions))
            assert outcomes[0] == outcomes[1] == outcomes[2], scheme

    def test_default_machine_has_histograms_but_no_tracer(self):
        stats, result = _run("pom", None)
        assert result.histograms is not None
        assert (result.histograms["translation_cycles"].count
                == result.references)
        assert result.windows is None

    def test_disabled_machine_attaches_nothing(self):
        stats, result = _run("pom", Observability.disabled())
        assert result.histograms is None
        zeros = result.latency_percentiles("translation_cycles")
        assert zeros == {"p50": 0.0, "p90": 0.0, "p99": 0.0, "max": 0.0}

    def test_histogram_totals_match_counters(self):
        _, result = _run("pom", None)
        penalty = result.histograms["penalty_cycles"]
        assert penalty.total == result.penalty_cycles
        assert penalty.count == result.l2_tlb_misses
