"""Acceptance tests for the resilient campaign engine.

The ISSUE-level contract: an interrupted checkpointed campaign resumes
without re-simulating finished runs, injected process faults degrade the
campaign instead of killing it, and none of the machinery perturbs the
serial deterministic output.
"""

import dataclasses
import io

import pytest

from repro import cli
from repro.experiments import campaign
from repro.experiments.runner import ExperimentParams
from repro.faults import FaultPlan

#: One benchmark, tiny scale: the full campaign enumeration stays small
#: (fig8 schemes + baseline/native + uncached + sensitivity sweeps).
TINY = ExperimentParams(num_cores=1, refs_per_core=300, scale=0.02, seed=5,
                        max_retries=0, retry_backoff_s=0.0)

CLI_ARGS = ["campaign", "--benchmarks", "gups", "--cores", "1",
            "--refs", "300", "--scale", "0.02", "--seed", "5",
            "--max-retries", "0", "--retry-backoff", "0"]


def run_campaign(**kwargs):
    out = io.StringIO()
    result = campaign.run_all(TINY, ["gups"], out=out,
                              progress=io.StringIO(), **kwargs)
    return result, out.getvalue()


class TestCheckpointResume:
    def test_resume_resimulates_nothing(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        first, text_first = run_campaign(checkpoint_path=path)
        assert first.simulated > 0
        assert not first.failures

        resumed, text_resumed = run_campaign(checkpoint_path=path,
                                             resume=True)
        assert resumed.simulated == 0          # the acceptance criterion
        assert resumed.restored == first.simulated
        assert text_resumed == text_first      # same report either way

    def test_seed_change_misses_the_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        first, _ = run_campaign(checkpoint_path=path)
        reseeded = dataclasses.replace(TINY, seed=TINY.seed + 1)
        out = io.StringIO()
        second = campaign.run_all(reseeded, ["gups"], out=out,
                                  progress=io.StringIO(),
                                  checkpoint_path=path, resume=True)
        assert second.restored == 0
        assert second.simulated == first.simulated

    def test_execution_knobs_still_hit_the_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        run_campaign(checkpoint_path=path)
        retimed = dataclasses.replace(TINY, run_timeout_s=99.0,
                                      max_retries=5)
        out = io.StringIO()
        resumed = campaign.run_all(retimed, ["gups"], out=out,
                                   progress=io.StringIO(),
                                   checkpoint_path=path, resume=True)
        assert resumed.simulated == 0

    def test_without_resume_checkpoint_is_overwritten_not_read(
            self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        first, _ = run_campaign(checkpoint_path=path)
        again, _ = run_campaign(checkpoint_path=path)  # no resume=True
        assert again.restored == 0
        assert again.simulated == first.simulated


class TestDegradedCampaign:
    def test_faulted_runs_annotate_report_and_set_failures(self):
        faults = FaultPlan.parse("crash@gups/pom#*,hang@gups/tsb#*")
        result, text = run_campaign(faults=faults)
        assert result.failures
        types = {failure.error.type for failure in result.failures}
        assert types == {"WorkerCrash", "RunTimeout"}
        assert "Campaign failures" in text
        assert "n/a" in text               # missing cells, not missing rows
        assert "Figure 8" in text          # every report still renders

    def test_single_transient_fault_recovers(self):
        retrying = dataclasses.replace(TINY, max_retries=1)
        out = io.StringIO()
        result = campaign.run_all(retrying, ["gups"], out=out,
                                  progress=io.StringIO(),
                                  faults=FaultPlan.parse("crash@gups/pom#1"))
        assert not result.failures
        assert "n/a" not in out.getvalue()


class TestDeterminism:
    def test_serial_campaign_is_byte_identical(self):
        _, first = run_campaign()
        _, second = run_campaign()
        assert first == second

    def test_checkpointing_does_not_change_the_report(self, tmp_path):
        _, plain = run_campaign()
        _, checkpointed = run_campaign(
            checkpoint_path=str(tmp_path / "ck.jsonl"))
        assert plain == checkpointed


class TestCliExitCodes:
    def test_interrupt_exits_130_with_resumable_checkpoint(
            self, tmp_path, capsys):
        ck = tmp_path / "ck.jsonl"
        out = tmp_path / "report.txt"
        code = cli.main(CLI_ARGS + [
            "--checkpoint", str(ck), "--output", str(out),
            "--inject-faults", "interrupt@gups/baseline#1"])
        assert code == 130
        assert "interrupted" in capsys.readouterr().err
        assert ck.exists() and ck.stat().st_size > 0  # fig8 runs landed
        assert not out.exists()                       # no half-report

        resumed = tmp_path / "resumed.txt"
        code = cli.main(CLI_ARGS + [
            "--checkpoint", str(ck), "--resume", "--output", str(resumed)])
        capsys.readouterr()
        assert code == 0
        assert "Figure 8" in resumed.read_text()

    def test_degraded_campaign_exits_1(self, tmp_path, capsys):
        out = tmp_path / "report.txt"
        code = cli.main(CLI_ARGS + [
            "--output", str(out),
            "--inject-faults", "crash@gups/pom#*"])
        assert code == 1
        assert "degraded" in capsys.readouterr().err
        assert "Campaign failures" in out.read_text()

    def test_bad_fault_spec_exits_2(self, capsys):
        code = cli.main(CLI_ARGS + ["--inject-faults", "explode@gups"])
        assert code == 2
        assert "explode" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        assert cli.main(CLI_ARGS + ["--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_resilience_flags_rejected_outside_campaign(self, capsys):
        code = cli.main(["fig8", "--benchmarks", "gups",
                         "--checkpoint", "ck.jsonl"])
        assert code == 2
        assert "campaign" in capsys.readouterr().err

    def test_bad_env_value_exits_2(self, monkeypatch, capsys):
        monkeypatch.setenv("POMTLB_CORES", "many")
        code = cli.main(["fig8", "--benchmarks", "gups"])
        assert code == 2
        err = capsys.readouterr().err
        assert "POMTLB_CORES" in err and "many" in err
