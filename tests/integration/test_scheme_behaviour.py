"""Cross-scheme integration: the paper's qualitative claims, simulated.

These run a mid-size zipf-clustered workload once per scheme and check
the *relationships* the paper's evaluation rests on — walk elimination,
cheaper steady-state misses, functional correctness of every scheme's
translations and shootdown coherence.
"""

import pytest

from repro.common import addr
from repro.common.config import SystemConfig
from repro.common.rng import ZipfSampler, make_rng
from repro.core.system import Machine
from repro.workloads.trace import CoreStream, MemoryReference

PAGES = 20000
MEASURED = 8000


def zipf_workload(seed=5, alpha=0.9):
    """Warmup pass over every page, then clustered-zipf reuse."""
    rng = make_rng(seed, "wl")
    sampler = ZipfSampler(PAGES, alpha, rng)
    refs = []
    icount = 0
    for page in range(PAGES):
        icount += 10
        refs.append(MemoryReference(icount, page * addr.SMALL_PAGE_SIZE, False))
    for _ in range(MEASURED):
        icount += 10
        refs.append(MemoryReference(icount, sampler.sample() * addr.SMALL_PAGE_SIZE,
                                    False))
    return [CoreStream(core=0, vm_id=0, asid=1, references=refs)], PAGES


@pytest.fixture(scope="module")
def results():
    streams, warmup = zipf_workload()
    out = {}
    for scheme in ("baseline", "pom", "shared_l2", "tsb"):
        machine = Machine(SystemConfig(num_cores=1), scheme=scheme, seed=5)
        out[scheme] = machine.run(streams, warmup_references=warmup)
    return out


class TestPaperClaims:
    def test_all_schemes_see_identical_miss_pressure(self, results):
        # baseline / pom / tsb share the private L2 TLB front end.
        misses = {results[s].l2_tlb_misses for s in ("baseline", "pom", "tsb")}
        assert len(misses) == 1

    def test_pom_eliminates_nearly_all_walks(self, results):
        assert results["baseline"].walk_elimination == 0.0
        assert results["pom"].walk_elimination > 0.99

    def test_pom_misses_are_cheaper_than_baseline_walks(self, results):
        assert (results["pom"].avg_penalty_per_miss
                < results["baseline"].avg_penalty_per_miss)

    def test_tsb_also_avoids_walks_but_pays_traps(self, results):
        tsb = results["tsb"]
        assert tsb.walk_elimination > 0.9
        # Every TSB hit still costs the trap, so its per-miss penalty
        # exceeds the POM-TLB's.
        assert tsb.avg_penalty_per_miss > results["pom"].avg_penalty_per_miss

    def test_shared_l2_cannot_hold_the_working_set(self, results):
        # 20000 hot pages >> 1536 shared entries: walks continue.
        assert results["shared_l2"].page_walks > 0

    def test_pom_cache_hit_ratios_meaningful(self, results):
        pom = results["pom"]
        assert pom.pom_hit_ratio() > 0.95
        assert pom.tlb_cache_hit_ratio("l3") > 0.5


class TestShootdownCoherence:
    @pytest.mark.parametrize("scheme", ["baseline", "pom", "shared_l2", "tsb"])
    def test_remap_after_shootdown_yields_new_translation(self, scheme):
        machine = Machine(SystemConfig(num_cores=1), scheme=scheme, seed=3)
        va = 0x7000
        page = machine.touch(0, 1, va)
        machine.scheme.translate(0, 0, 1, va, page)
        # OS unmaps, shoots down, and remaps the page.  The freed frame
        # is reclaimed and comes straight back (LIFO reuse), which is
        # the adversarial case: a stale entry would look "correct".
        old_frame = page.host_frame
        machine.host.vms[0].unmap(1, va)
        machine.scheme.shootdown(0, 1, va, large=page.large)
        new_page = machine.touch(0, 1, va)
        assert new_page.host_frame == old_frame
        result = machine.scheme.translate(0, 0, 1, va, new_page)
        assert result.l2_miss  # stale entries are gone everywhere
