"""CLI round-trips for ``pomtlb trace pack`` / ``trace unpack``."""

import gzip

import pytest

from repro import cli
from repro.workloads.packed import load_packed, save_packed
from repro.workloads.trace import CoreStream, MemoryReference, save_stream


def make_stream(core=0, n=12):
    refs = [MemoryReference(5 + i * 7, 0x2000 + 0x1000 * i, i % 3 == 0)
            for i in range(n)]
    return CoreStream(core=core, vm_id=1, asid=4, references=refs)


def read_text(path):
    opener = gzip.open if path.endswith(".gz") else open
    with opener(path, "rt") as handle:
        return handle.read()


class TestPackUnpackRoundTrip:
    def test_text_to_packed_to_text_is_byte_identical(self, tmp_path,
                                                      capsys):
        text = str(tmp_path / "trace.txt")
        packed = str(tmp_path / "trace.pwl")
        back = str(tmp_path / "back.txt")
        save_stream(make_stream(), text)

        assert cli.main(["trace", "pack", text, packed]) == 0
        assert "packed 12 record(s)" in capsys.readouterr().out
        assert cli.main(["trace", "unpack", packed, back]) == 0
        assert "unpacked 12 record(s)" in capsys.readouterr().out
        assert read_text(back) == read_text(text)

    def test_gzip_on_both_sides(self, tmp_path):
        text = str(tmp_path / "trace.txt.gz")
        packed = str(tmp_path / "trace.pwl.gz")
        back = str(tmp_path / "back.txt.gz")
        save_stream(make_stream(n=40), text)

        assert cli.main(["trace", "pack", text, packed]) == 0
        with open(packed, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        assert cli.main(["trace", "unpack", packed, back]) == 0
        assert read_text(back) == read_text(text)

    def test_empty_stream_round_trips(self, tmp_path):
        text = str(tmp_path / "empty.txt")
        packed = str(tmp_path / "empty.pwl")
        back = str(tmp_path / "back.txt")
        save_stream(CoreStream(core=2, vm_id=0, asid=9), text)

        assert cli.main(["trace", "pack", text, packed]) == 0
        assert cli.main(["trace", "unpack", packed, back]) == 0
        assert read_text(back) == read_text(text)
        assert "core=2 vm=0 asid=9" in read_text(back)

    def test_packed_output_is_validated(self, tmp_path):
        text = str(tmp_path / "trace.txt")
        packed = str(tmp_path / "trace.pwl")
        save_stream(make_stream(), text)
        cli.main(["trace", "pack", text, packed])
        container = load_packed(packed)
        assert container.validated
        assert container.streams[0].validated
        container.backing.close()


class TestErrors:
    def test_missing_input_exits_2(self, tmp_path, capsys):
        code = cli.main(["trace", "pack", str(tmp_path / "no.txt"),
                         str(tmp_path / "out.pwl")])
        assert code == 2
        assert "cannot pack trace" in capsys.readouterr().err

    def test_malformed_text_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("#pomtlb-trace core=0 vm=0 asid=1\n10 zz R\n")
        code = cli.main(["trace", "pack", str(bad),
                         str(tmp_path / "out.pwl")])
        assert code == 2
        assert "trace error" in capsys.readouterr().err

    def test_non_monotonic_text_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.txt"
        bad.write_text("#pomtlb-trace core=0 vm=0 asid=1\n"
                       "10 4096 R\n5 8192 W\n")
        assert cli.main(["trace", "pack", str(bad),
                         str(tmp_path / "out.pwl")]) == 2
        capsys.readouterr()

    def test_corrupt_packed_exits_2(self, tmp_path, capsys):
        path = tmp_path / "damaged.pwl"
        path.write_bytes(b"definitely not a packed trace")
        code = cli.main(["trace", "unpack", str(path),
                         str(tmp_path / "out.txt")])
        assert code == 2
        assert "trace error" in capsys.readouterr().err

    def test_multi_stream_workload_refused(self, tmp_path, capsys):
        path = str(tmp_path / "workload.pwl")
        save_packed(path, [make_stream(core=0), make_stream(core=1)])
        code = cli.main(["trace", "unpack", path,
                         str(tmp_path / "out.txt")])
        assert code == 2
        assert "2 streams" in capsys.readouterr().err

    def test_trace_without_action_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            cli.main(["trace"])
        assert excinfo.value.code == 2
        capsys.readouterr()


class TestListing:
    def test_trace_tools_listed(self, capsys):
        assert cli.main(["list"]) == 0
        assert "trace pack" in capsys.readouterr().out
