"""Differential test: optimized engine == frozen seed-era reference engine.

The fast-path engine rewrite (packed keys, slot counters, dict-ordering
LRU, batched replay) promises **bit-identical counters**.  This test
holds it to that: for every scheme, a workload replayed through
:mod:`repro.core.refcheck` (the frozen pre-rewrite engine) and through
the optimized :class:`~repro.core.system.Machine` must produce

* identical ``SimulationResult`` scalar fields,
* an identical ``StatRegistry`` snapshot (every group, every counter,
  exact values), and
* identical latency histograms.

This is the contract future optimizations are held to — see the
"Engine performance" section of EXPERIMENTS.md.
"""

import pytest

from repro.core.batch import HAS_NUMPY
from repro.core.refcheck import ReferenceMachine
from repro.core.system import Machine
from repro.experiments.runner import ExperimentParams
from repro.obs import Observability
from repro.obs.sinks import ListSink
from repro.obs.tracer import EventTracer
from repro.workloads.packed import pack_stream
from repro.workloads.suite import get_profile

needs_numpy = pytest.mark.skipif(
    not HAS_NUMPY, reason="numpy unavailable (pomtlb[fast] not installed)")

SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")

#: Small but representative: 2 cores, demand paging, warmup reset,
#: mixed page sizes (gups has a THP fraction), every scheme's miss path
#: exercised thousands of times.
PARAMS = ExperimentParams(num_cores=2, refs_per_core=900, scale=0.1, seed=42)

RESULT_FIELDS = ("scheme", "references", "instructions", "l2_tlb_misses",
                 "penalty_cycles", "translation_cycles", "data_cycles",
                 "page_walks")


def _workload(benchmark="gups", params=PARAMS):
    profile = get_profile(benchmark)
    return profile, profile.build(num_cores=params.num_cores,
                                  refs_per_core=params.refs_per_core,
                                  seed=params.seed, scale=params.scale)


def _run_reference(scheme, profile, workload, params=PARAMS):
    machine = ReferenceMachine(params.system_config(), scheme=scheme,
                               thp_large_fraction=profile.thp_large_fraction,
                               seed=params.seed)
    return machine.run(workload.streams,
                       warmup_references=workload.warmup_by_core
                       or workload.warmup_references)


def _run_optimized(scheme, profile, workload, params=PARAMS, obs=None):
    machine = Machine(params.system_config(), scheme=scheme,
                      thp_large_fraction=profile.thp_large_fraction,
                      seed=params.seed, obs=obs)
    return machine.run(workload.streams,
                       warmup_references=workload.warmup_by_core
                       or workload.warmup_references)


def _assert_equivalent(reference, optimized):
    for field in RESULT_FIELDS:
        assert getattr(optimized, field) == getattr(reference, field), (
            f"SimulationResult.{field}: optimized "
            f"{getattr(optimized, field)!r} != reference "
            f"{getattr(reference, field)!r}")
    ref_stats = reference.stats.as_nested_dict()
    new_stats = optimized.stats.as_nested_dict()
    assert sorted(new_stats) == sorted(ref_stats), (
        "stat group sets differ: only-new="
        f"{sorted(set(new_stats) - set(ref_stats))} only-ref="
        f"{sorted(set(ref_stats) - set(new_stats))}")
    for group, counters in ref_stats.items():
        assert new_stats[group] == counters, (
            f"group {group!r}: optimized {new_stats[group]!r} "
            f"!= reference {counters!r}")
    ref_hists = {name: h.as_dict() for name, h in reference.histograms.items()}
    new_hists = {name: h.as_dict() for name, h in optimized.histograms.items()}
    assert new_hists == ref_hists


@pytest.mark.parametrize("scheme", SCHEMES)
def test_counters_bit_identical(scheme):
    profile, workload = _workload()
    reference = _run_reference(scheme, profile, workload)
    optimized = _run_optimized(scheme, profile, workload)
    _assert_equivalent(reference, optimized)


@pytest.mark.parametrize("scheme", ("pom", "baseline"))
def test_counters_bit_identical_multithreaded(scheme):
    """Shared address space + per-core warmup counts (mapping form)."""
    profile, workload = _workload(benchmark="graph500")
    reference = _run_reference(scheme, profile, workload)
    optimized = _run_optimized(scheme, profile, workload)
    _assert_equivalent(reference, optimized)


def test_counters_identical_with_tracing_enabled():
    """The traced slow path must count exactly like the fast path."""
    profile, workload = _workload()
    reference = _run_reference("pom", profile, workload)
    sink = ListSink()
    obs = Observability(tracer=EventTracer(sinks=[sink]))
    optimized = _run_optimized("pom", profile, workload, obs=obs)
    _assert_equivalent(reference, optimized)
    assert sink.events, "tracer saw no events despite being enabled"


def test_fast_path_equals_traced_path_counters():
    """Tracing on vs off may not change a single counter."""
    profile, workload = _workload()
    plain = _run_optimized("pom", profile, workload)
    traced = _run_optimized(
        "pom", profile, workload,
        obs=Observability(tracer=EventTracer(sinks=[ListSink()])))
    assert (traced.stats.as_nested_dict()
            == plain.stats.as_nested_dict())
    for field in RESULT_FIELDS:
        assert getattr(traced, field) == getattr(plain, field)


# -- vectorized batch engine (repro.core.batch) ----------------------------


def _batch_machine(scheme, profile, params=PARAMS, **kwargs):
    return Machine(params.system_config(), scheme=scheme,
                   thp_large_fraction=profile.thp_large_fraction,
                   seed=params.seed, batch=True, **kwargs)


def _packed(workload):
    return [pack_stream(s) for s in workload.streams]


@needs_numpy
@pytest.mark.parametrize("scheme", SCHEMES)
def test_batch_engine_bit_identical(scheme):
    """Batch replay == frozen reference, every counter, every scheme."""
    profile, workload = _workload()
    reference = _run_reference(scheme, profile, workload)
    machine = _batch_machine(scheme, profile)
    warm = workload.warmup_by_core or workload.warmup_references
    batched = machine.run(_packed(workload), warmup_references=warm)
    assert machine.last_replay_mode == "batch", machine.batch_fallback_reason
    _assert_equivalent(reference, batched)


@needs_numpy
@pytest.mark.parametrize("scheme", ("pom", "baseline"))
def test_batch_engine_bit_identical_multithreaded(scheme):
    """Shared address space, same-core stream pairs, per-core warmup."""
    profile, workload = _workload(benchmark="graph500")
    reference = _run_reference(scheme, profile, workload)
    machine = _batch_machine(scheme, profile)
    warm = workload.warmup_by_core or workload.warmup_references
    batched = machine.run(_packed(workload), warmup_references=warm)
    assert machine.last_replay_mode == "batch", machine.batch_fallback_reason
    _assert_equivalent(reference, batched)


@needs_numpy
@pytest.mark.parametrize("scheme", SCHEMES)
def test_batch_engine_warm_replay_identical(scheme):
    """Second run on the same machine (warm replay) stays bit-identical.

    Warm replay takes the pre-created-stream-state fast path in the
    batch engine (the debut slice vectorizes), so it needs its own
    equivalence check against a twice-run reference machine.
    """
    profile, workload = _workload()
    params = PARAMS
    warm = workload.warmup_by_core or workload.warmup_references
    ref = ReferenceMachine(params.system_config(), scheme=scheme,
                           thp_large_fraction=profile.thp_large_fraction,
                           seed=params.seed)
    ref.run(workload.streams, warmup_references=warm)
    reference = ref.run(workload.streams, warmup_references=warm)
    machine = _batch_machine(scheme, profile)
    packed = _packed(workload)
    machine.run(packed, warmup_references=warm)
    batched = machine.run(packed, warmup_references=warm)
    assert machine.last_replay_mode == "batch", machine.batch_fallback_reason
    _assert_equivalent(reference, batched)


@needs_numpy
def test_batch_requested_verify_armed_still_identical():
    """`--verify` + batch: the verifier forces the scalar loop, and the

    verified run must still match an unverified batch run bit for bit
    (all checkers armed; the verifier is an execution knob).
    """
    profile, workload = _workload()
    warm = workload.warmup_by_core or workload.warmup_references
    machine = _batch_machine("pom", profile)
    batched = machine.run(_packed(workload), warmup_references=warm)
    assert machine.last_replay_mode == "batch"
    verified_machine = _batch_machine("pom", profile, verify=True)
    verified = verified_machine.run(_packed(workload),
                                    warmup_references=warm)
    assert verified_machine.last_replay_mode == "scalar"
    assert verified_machine.batch_fallback_reason == (
        "consistency verifier armed")
    _assert_equivalent(batched, verified)
