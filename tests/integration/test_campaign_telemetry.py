"""Acceptance tests for campaign telemetry.

The ISSUE-level contract: a campaign run with ``--status-out`` produces
a schema-valid NDJSON status stream, a Prometheus text file, and a
self-contained HTML dashboard whose counters reconcile exactly with the
checkpoint store and the campaign report; telemetry left disabled
changes no report byte; and the (event, key) sequence of a serial
campaign's stream is deterministic run to run.
"""

import io
import json
import re

import pytest

from repro import cli
from repro.experiments import campaign
from repro.experiments.runner import ExperimentParams
from repro.faults import FaultPlan
from repro.obs import NO_TELEMETRY, CampaignTelemetry
from repro.obs.exporters import DASHBOARD_FILENAME, PROMETHEUS_FILENAME
from repro.obs.telemetry import validate_status_event
from repro.resilience import CheckpointStore

TINY = ExperimentParams(num_cores=1, refs_per_core=300, scale=0.02, seed=5,
                        max_retries=0, retry_backoff_s=0.0)


def run_campaign(telemetry=NO_TELEMETRY, params=TINY, **kwargs):
    out = io.StringIO()
    result = campaign.run_all(params, ["gups"], out=out,
                              progress=io.StringIO(), telemetry=telemetry,
                              **kwargs)
    return result, out.getvalue()


def read_stream(path):
    events = [json.loads(line) for line in path.read_text().splitlines()]
    for event in events:
        validate_status_event(event)  # schema-golden: raises on drift
    return events


def parse_prom(path):
    samples = {}
    for line in path.read_text().splitlines():
        if line.startswith("#"):
            continue
        name, value = line.rsplit(" ", 1)
        samples[name] = float(value)
    return samples


def parse_dashboard(path):
    html = path.read_text()
    payload = re.search(
        r'<script type="application/json" id="data">(.*?)</script>',
        html, re.S).group(1)
    return json.loads(payload.replace("<\\/", "</"))


class TestSerialCampaignStream:
    def test_stream_is_schema_valid_and_reconciles(self, tmp_path):
        telemetry = CampaignTelemetry(
            status_path=str(tmp_path / "status.ndjson"),
            export_dir=str(tmp_path))
        result, _ = run_campaign(telemetry=telemetry,
                                 checkpoint_path=str(tmp_path / "ck.jsonl"))
        events = read_stream(tmp_path / "status.ndjson")
        kinds = [e["event"] for e in events]
        assert kinds[0] == "campaign_start"
        assert kinds[-1] == "campaign_end"
        assert "workloads" in kinds

        end = events[-1]
        start = events[0]
        # Terminal tallies reconcile with the CampaignResult...
        assert end["completed"] == result.simulated
        assert end["failed"] == len(result.failures)
        assert end["restored"] == result.restored
        assert end["simulated"] == result.simulated
        # ...and with the planned-run count (duplicates collapsed).
        assert end["completed"] + end["failed"] + end["restored"] \
            == start["total_runs"]
        # Every dispatched run reached exactly one terminal event.
        ends = [e for e in events if e["event"] == "run_end"]
        assert len(ends) == start["total_runs"]
        assert len({e["key"] for e in ends}) == len(ends)
        # ...and the checkpoint store holds exactly those runs.
        store = CheckpointStore(str(tmp_path / "ck.jsonl"), load=True)
        assert len(store) == end["completed"]

    def test_event_key_sequence_is_deterministic(self, tmp_path):
        sequences = []
        for tag in ("a", "b"):
            telemetry = CampaignTelemetry(
                status_path=str(tmp_path / f"status-{tag}.ndjson"))
            run_campaign(telemetry=telemetry)
            events = read_stream(tmp_path / f"status-{tag}.ndjson")
            sequences.append([(e["event"], e.get("key"))
                              for e in events if e["event"] != "heartbeat"])
        # Timestamps and durations differ; the projected (event, key)
        # order of a serial campaign may not.
        assert sequences[0] == sequences[1]

    def test_predictions_recorded_for_every_run(self, tmp_path):
        telemetry = CampaignTelemetry(
            status_path=str(tmp_path / "status.ndjson"))
        result, _ = run_campaign(telemetry=telemetry)
        ends = [e for e in read_stream(tmp_path / "status.ndjson")
                if e["event"] == "run_end"]
        assert ends and all(e["predicted_s"] > 0 for e in ends)
        # Every completed run produced an LPT calibration record.
        assert telemetry.lpt.summary()["runs"] == result.simulated
        assert all(r["actual_s"] >= 0 for r in telemetry.lpt.records)


class TestReportUnperturbed:
    def test_report_bytes_identical_with_and_without_telemetry(
            self, tmp_path):
        _, bare = run_campaign()
        telemetry = CampaignTelemetry(
            status_path=str(tmp_path / "status.ndjson"),
            export_dir=str(tmp_path))
        _, instrumented = run_campaign(telemetry=telemetry)
        assert instrumented == bare

    def test_null_telemetry_writes_nothing(self, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        run_campaign()  # NO_TELEMETRY default
        assert list(tmp_path.iterdir()) == []


class TestArtifacts:
    @pytest.fixture(scope="class")
    def campaign_artifacts(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("telemetry")
        telemetry = CampaignTelemetry(
            status_path=str(tmp_path / "status.ndjson"),
            export_dir=str(tmp_path))
        result, _ = run_campaign(telemetry=telemetry,
                                 workload_cache=str(tmp_path / "cache"))
        return tmp_path, result

    def test_prometheus_counters_reconcile(self, campaign_artifacts):
        tmp_path, result = campaign_artifacts
        samples = parse_prom(tmp_path / PROMETHEUS_FILENAME)
        assert samples['pomtlb_campaign_runs_total{state="ok"}'] \
            == result.simulated
        assert samples["pomtlb_campaign_runs_planned"] == result.simulated
        # Cache hits + misses == distinct workloads the campaign needed.
        hits = samples["pomtlb_campaign_workload_cache_hits_total"]
        misses = samples["pomtlb_campaign_workload_cache_misses_total"]
        assert hits + misses \
            == samples["pomtlb_campaign_workloads_compiled_total"] + hits
        assert misses > 0  # cold cache: everything was a miss

    def test_dashboard_reconciles_with_result(self, campaign_artifacts):
        tmp_path, result = campaign_artifacts
        doc = parse_dashboard(tmp_path / DASHBOARD_FILENAME)
        summary = doc["summary"]
        assert summary["completed"] == result.simulated
        assert summary["failed"] == len(result.failures)
        assert summary["restored"] == result.restored
        assert summary["total_runs"] == summary["completed"] \
            + summary["failed"] + summary["restored"]
        assert len(doc["runs"]) == summary["total_runs"]
        assert doc["lpt"]["runs"] == result.simulated

    def test_dashboard_is_self_contained(self, campaign_artifacts):
        tmp_path, _ = campaign_artifacts
        html = (tmp_path / DASHBOARD_FILENAME).read_text()
        assert not re.search(r'(src|href)\s*=\s*["\'](https?:)?//', html)


class TestFailuresAndRetries:
    def test_failed_runs_counted_and_carry_errors(self, tmp_path):
        telemetry = CampaignTelemetry(
            status_path=str(tmp_path / "status.ndjson"))
        plan = FaultPlan.parse("crash@gups/pom#*")
        result, _ = run_campaign(telemetry=telemetry, faults=plan)
        assert result.failures
        events = read_stream(tmp_path / "status.ndjson")
        failed = [e for e in events
                  if e["event"] == "run_end" and e["state"] == "failed"]
        assert len(failed) == len(result.failures)
        assert all("WorkerCrash" in e["error"] for e in failed)
        assert events[-1]["failed"] == len(result.failures)

    def test_retries_emit_run_retry_events(self, tmp_path):
        telemetry = CampaignTelemetry(
            status_path=str(tmp_path / "status.ndjson"))
        retrying = ExperimentParams(num_cores=1, refs_per_core=300,
                                    scale=0.02, seed=5, max_retries=1,
                                    retry_backoff_s=0.0)
        plan = FaultPlan.parse("crash@gups/pom#1")  # first attempt only
        result, _ = run_campaign(telemetry=telemetry, params=retrying,
                                 faults=plan)
        assert not result.failures
        events = read_stream(tmp_path / "status.ndjson")
        retries = [e for e in events if e["event"] == "run_retry"]
        assert len(retries) == 1
        assert "WorkerCrash" in retries[0]["error"]
        assert events[-1]["retries"] == 1


class TestRestoredRuns:
    def test_resumed_campaign_reports_restored(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        first, _ = run_campaign(checkpoint_path=path)
        telemetry = CampaignTelemetry(
            status_path=str(tmp_path / "status.ndjson"))
        resumed, _ = run_campaign(telemetry=telemetry, checkpoint_path=path,
                                  resume=True)
        assert resumed.simulated == 0
        events = read_stream(tmp_path / "status.ndjson")
        assert events[-1]["restored"] == first.simulated
        assert events[-1]["completed"] == 0
        restored = [e for e in events if e["event"] == "run_end"]
        assert all(e["state"] == "restored" for e in restored)


class TestPooledCampaign:
    def test_pooled_campaign_produces_all_artifacts(self, tmp_path):
        pooled = ExperimentParams(num_cores=1, refs_per_core=300,
                                  scale=0.02, seed=5, workers=2,
                                  max_retries=0, retry_backoff_s=0.0)
        telemetry = CampaignTelemetry(
            status_path=str(tmp_path / "status.ndjson"),
            export_dir=str(tmp_path))
        result, _ = run_campaign(telemetry=telemetry, params=pooled)
        assert not result.failures
        events = read_stream(tmp_path / "status.ndjson")
        starts = [e for e in events if e["event"] == "run_start"]
        assert starts and all(e["mode"] == "pool" for e in starts)
        ends = [e for e in events
                if e["event"] == "run_end" and e["state"] == "ok"]
        assert len(ends) == result.simulated
        # Worker-measured spans rode the result pipe to the parent.
        assert all(e["wall_s"] > 0 for e in ends)
        assert all(e["cpu_s"] is not None for e in ends)
        assert (tmp_path / PROMETHEUS_FILENAME).exists()
        assert (tmp_path / DASHBOARD_FILENAME).exists()


class TestCli:
    ARGS = ["campaign", "--benchmarks", "gups", "--cores", "1",
            "--refs", "300", "--scale", "0.02", "--seed", "5",
            "--max-retries", "0", "--retry-backoff", "0"]

    def test_status_out_flag_end_to_end(self, tmp_path, capsys):
        status = tmp_path / "status.ndjson"
        code = cli.main(self.ARGS + ["--status-out", str(status),
                                     "--telemetry-dir", str(tmp_path),
                                     "--output",
                                     str(tmp_path / "report.txt")])
        capsys.readouterr()
        assert code == 0
        events = read_stream(status)
        assert events[-1]["event"] == "campaign_end"
        assert (tmp_path / PROMETHEUS_FILENAME).exists()
        assert (tmp_path / DASHBOARD_FILENAME).exists()

    def test_telemetry_flags_rejected_outside_campaign(self, capsys):
        assert cli.main(["fig8", "--status-out", "x.ndjson"]) == 2
        assert "--status-out" in capsys.readouterr().err
        assert cli.main(["fig8", "--telemetry-dir", "d"]) == 2

    def test_top_renders_finished_stream(self, tmp_path, capsys):
        status = tmp_path / "status.ndjson"
        cli.main(self.ARGS + ["--status-out", str(status),
                              "--output", str(tmp_path / "report.txt"),
                              "--telemetry-dir", str(tmp_path)])
        capsys.readouterr()
        assert cli.main(["top", str(status)]) == 0
        view = capsys.readouterr().out
        assert "POM-TLB campaign [finished]" in view
        assert "failed" in view and "100%" in view

    def test_top_missing_file_is_usage_error(self, tmp_path, capsys):
        assert cli.main(["top", str(tmp_path / "nope.ndjson")]) == 2
        assert "cannot open" in capsys.readouterr().err
