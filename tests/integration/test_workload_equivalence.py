"""Differential replay equivalence (ISSUE 4 acceptance criterion).

The packed workload pipeline is a pure transport optimisation: for every
scheme, replaying a workload from the packed columnar format — whether
decoded in-process, mmap'd from the on-disk cache, or attached through a
shared-memory segment — must produce *bit-identical* results to
regenerating the streams from the profile.  Identical means every
``SimulationResult`` counter, every ``StatRegistry`` value, and every
performance-model quantity; campaign reports must come out
byte-identical end to end.
"""

import dataclasses
import io

import pytest

from repro.experiments import campaign
from repro.experiments.runner import ExperimentParams, simulate_run
from repro.workloads.cache import WorkloadCache
from repro.workloads.packed import decode_container, encode_workload
from repro.workloads.shm import (
    WorkloadArena,
    WorkloadRef,
    attach_container,
    shm_available,
)
from repro.workloads.suite import get_profile
from repro.workloads.trace import validate_stream

SCHEMES = ("baseline", "pom", "pom_skewed", "shared_l2", "tsb")

PARAMS = ExperimentParams(num_cores=2, refs_per_core=250, scale=0.05,
                          seed=11)


def fingerprint(run):
    """Everything observable about one simulation, for exact comparison."""
    result = run.result
    return {
        "scheme": result.scheme,
        "references": result.references,
        "instructions": result.instructions,
        "l2_tlb_misses": result.l2_tlb_misses,
        "penalty_cycles": result.penalty_cycles,
        "translation_cycles": result.translation_cycles,
        "data_cycles": result.data_cycles,
        "page_walks": result.page_walks,
        "stats": result.stats.as_nested_dict(),
        "performance": dataclasses.astuple(run.performance),
    }


def build_workload(bench):
    profile = get_profile(bench)
    workload = profile.build(num_cores=PARAMS.num_cores,
                             refs_per_core=PARAMS.refs_per_core,
                             seed=PARAMS.seed, scale=PARAMS.scale)
    for stream in workload.streams:
        validate_stream(stream)
    return workload


@pytest.mark.parametrize("bench", ["gups", "graph500"])
class TestReplayModes:
    def test_packed_replay_is_bit_identical(self, bench):
        container = decode_container(
            encode_workload(build_workload(bench), validated=True))
        try:
            for scheme in SCHEMES:
                generated = simulate_run(bench, scheme, PARAMS)
                packed = simulate_run(bench, scheme, PARAMS,
                                      workload=container.workload())
                assert fingerprint(packed) == fingerprint(generated), scheme
        finally:
            container.backing.close()

    def test_cache_file_replay_is_bit_identical(self, bench, tmp_path):
        cache = WorkloadCache(str(tmp_path / "wl"))
        container, _ = cache.get_or_compile(bench, PARAMS)
        try:
            for scheme in SCHEMES:
                generated = simulate_run(bench, scheme, PARAMS)
                cached = simulate_run(bench, scheme, PARAMS,
                                      workload=container.workload())
                assert fingerprint(cached) == fingerprint(generated), scheme
        finally:
            container.backing.close()

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shm")
    def test_shared_memory_replay_is_bit_identical(self, bench):
        workload = build_workload(bench)
        with WorkloadArena() as arena:
            name = arena.publish_workload("eq" + "0" * 30, workload,
                                          validated=True)
            container = attach_container(
                WorkloadRef(benchmark=bench, key="eq" + "0" * 30,
                            shm_name=name))
            try:
                for scheme in SCHEMES:
                    generated = simulate_run(bench, scheme, PARAMS)
                    shared = simulate_run(bench, scheme, PARAMS,
                                          workload=container.workload())
                    assert fingerprint(shared) == \
                        fingerprint(generated), scheme
            finally:
                container.backing.close()

    def test_one_container_many_replays(self, bench):
        """Back-to-back replays off one container don't interfere."""
        container = decode_container(
            encode_workload(build_workload(bench), validated=True))
        try:
            first = simulate_run(bench, "pom", PARAMS,
                                 workload=container.workload())
            second = simulate_run(bench, "pom", PARAMS,
                                  workload=container.workload())
            assert fingerprint(first) == fingerprint(second)
        finally:
            container.backing.close()


TINY = ExperimentParams(num_cores=1, refs_per_core=300, scale=0.02, seed=5,
                        max_retries=0, retry_backoff_s=0.0)


def campaign_text(params=TINY, **kwargs):
    out = io.StringIO()
    result = campaign.run_all(params, ["gups"], out=out,
                              progress=io.StringIO(), **kwargs)
    assert not result.failures
    return out.getvalue()


def strip_params_line(text):
    """Drop the one header line that legitimately differs (workers=)."""
    return "\n".join(line for line in text.splitlines()
                     if not line.startswith("# params:"))


class TestCampaignEquivalence:
    def test_serial_shared_matches_status_quo(self):
        status_quo = campaign_text(share_workloads=False)
        shared = campaign_text()
        assert shared == status_quo

    def test_cold_and_warm_cache_match_status_quo(self, tmp_path):
        status_quo = campaign_text(share_workloads=False)
        cold = campaign_text(workload_cache=str(tmp_path / "wl"))
        warm = campaign_text(workload_cache=str(tmp_path / "wl"))
        assert cold == status_quo
        assert warm == status_quo

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shm")
    def test_pooled_shm_matches_pooled_status_quo(self, tmp_path):
        pooled = dataclasses.replace(TINY, workers=2)
        status_quo = campaign_text(pooled, include_sensitivity=False,
                                   share_workloads=False)
        shm = campaign_text(pooled, include_sensitivity=False,
                            workload_cache=str(tmp_path / "wl"))
        assert shm == status_quo
        # And across worker counts only the params header line differs.
        serial = campaign_text(include_sensitivity=False)
        assert strip_params_line(shm) == strip_params_line(serial)
