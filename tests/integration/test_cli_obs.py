"""CLI-level observability: trace/metrics flags, profile, atomic output."""

import json
import os

import pytest

from repro.cli import _atomic_write, main as cli_main
from repro.obs.replay import load_chrome, load_jsonl, replay_counters

_SMALL = ["--cores", "1", "--refs", "300", "--scale", "0.02", "--seed", "2"]


class TestTraceOut:
    def test_jsonl_trace_parses_and_replays(self, tmp_path, capsys):
        trace = tmp_path / "t.jsonl"
        code = cli_main(["fig8", "--benchmarks", "gups",
                         "--trace-out", str(trace)] + _SMALL)
        assert code == 0
        events = load_jsonl(str(trace))       # schema-validates every event
        metas = [e for e in events if e["type"] == "run_meta"]
        # fig8 runs gups under pom/shared_l2/tsb; one run_meta splits each
        assert {m["scheme"] for m in metas} >= {"pom", "shared_l2", "tsb"}
        counters = replay_counters(events)
        assert counters["translations"] > 0

    def test_json_suffix_selects_chrome_format(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        code = cli_main(["fig9", "--benchmarks", "gups",
                         "--trace-out", str(trace)] + _SMALL)
        assert code == 0
        records = load_chrome(str(trace))
        assert records
        assert any(r.get("name") == "process_name" for r in records)

    def test_trace_sample_thins_the_trace(self, tmp_path, capsys):
        dense, sparse = tmp_path / "d.jsonl", tmp_path / "s.jsonl"
        cli_main(["fig9", "--benchmarks", "gups",
                  "--trace-out", str(dense)] + _SMALL)
        cli_main(["fig9", "--benchmarks", "gups",
                  "--trace-out", str(sparse), "--trace-sample", "50"]
                 + _SMALL)
        assert len(load_jsonl(str(sparse))) < len(load_jsonl(str(dense))) / 10

    def test_bad_sample_rejected(self, tmp_path, capsys):
        code = cli_main(["fig9", "--benchmarks", "gups",
                         "--trace-out", str(tmp_path / "t.jsonl"),
                         "--trace-sample", "0"] + _SMALL)
        assert code == 2
        assert "--trace-sample" in capsys.readouterr().err

    def test_unwritable_trace_path_rejected(self, capsys):
        code = cli_main(["fig9", "--benchmarks", "gups",
                         "--trace-out", "/nonexistent/t.jsonl"] + _SMALL)
        assert code == 2
        assert "--trace-out" in capsys.readouterr().err

    def test_unwritable_output_path_rejected(self, capsys):
        code = cli_main(["fig4", "--output", "/nonexistent/r.txt"])
        assert code == 2
        assert "--output" in capsys.readouterr().err


class TestMetricsOut:
    def test_windowed_metrics_json(self, tmp_path, capsys):
        metrics = tmp_path / "m.json"
        code = cli_main(["details", "--benchmarks", "gups",
                         "--metrics-out", str(metrics), "--window", "100"]
                        + _SMALL)
        assert code == 0
        payload = json.loads(metrics.read_text())
        assert payload["window"] == 100
        run = payload["runs"][0]
        assert run["benchmark"] == "gups"
        assert run["rows"]
        assert "avg_translation_cycles" in run["rows"][0]


class TestProfileCommand:
    def test_profile_renders_component_table(self, capsys):
        code = cli_main(["profile", "--benchmarks", "gups"] + _SMALL)
        assert code == 0
        out = capsys.readouterr().out
        assert "Profile: gups under pom" in out
        assert "mmu.translate" in out

    def test_profile_accepts_scheme(self, capsys):
        code = cli_main(["profile", "--benchmarks", "gups",
                         "--scheme", "baseline"] + _SMALL)
        assert code == 0
        assert "under baseline" in capsys.readouterr().out

    def test_profile_needs_one_benchmark(self, capsys):
        assert cli_main(["profile"] + _SMALL) == 2
        assert cli_main(["profile", "--benchmarks", "gups,mcf"] + _SMALL) == 2


class TestCampaignFlags:
    def test_campaign_bars_is_rejected_loudly(self, capsys):
        assert cli_main(["campaign", "--bars", "improvement"]) == 2
        assert "--bars" in capsys.readouterr().err

    def test_campaign_json_emits_report_array(self, tmp_path, capsys):
        out = tmp_path / "campaign.json"
        code = cli_main(["campaign", "--json", "--benchmarks", "gups",
                         "--output", str(out)] + _SMALL)
        assert code == 0
        reports = json.loads(out.read_text())
        assert isinstance(reports, list) and len(reports) > 5
        titles = [r["title"] for r in reports]
        assert any("Figure 8" in t for t in titles)
        for report in reports:
            assert set(report) == {"title", "headers", "rows", "notes"}


class TestAtomicOutput:
    def test_report_written_atomically(self, tmp_path):
        out = tmp_path / "fig4.txt"
        assert cli_main(["fig4", "--output", str(out)]) == 0
        assert "Figure 4" in out.read_text()
        assert not (tmp_path / "fig4.txt.tmp").exists()

    def test_atomic_write_replaces_existing_content(self, tmp_path):
        path = tmp_path / "r.txt"
        path.write_text("old")
        _atomic_write(str(path), "new")
        assert path.read_text() == "new"

    def test_failed_write_leaves_no_temp_file(self, tmp_path, monkeypatch):
        path = tmp_path / "r.txt"

        def boom(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError):
            _atomic_write(str(path), "data")
        assert not path.exists()
        assert not (tmp_path / "r.txt.tmp").exists()

    def test_render_failure_creates_no_output_file(self, tmp_path):
        out = tmp_path / "fig4.txt"
        with pytest.raises(ValueError):
            cli_main(["fig4", "--bars", "nonexistent",
                      "--output", str(out)])
        assert not out.exists()
        assert not (tmp_path / "fig4.txt.tmp").exists()
