"""Failure injection and scale-limit integration tests."""

import pytest

from repro.common import addr
from repro.common.config import SystemConfig
from repro.common.errors import TranslationFault
from repro.core.system import Machine
from repro.workloads.trace import CoreStream, MemoryReference


class TestFaultInjection:
    def test_walking_unmapped_address_faults(self):
        """A walk for a VA the OS never mapped is a page fault."""
        machine = Machine(SystemConfig(num_cores=1), scheme="baseline")
        machine.touch(0, 1, 0x1000)  # create the VM/process
        with pytest.raises(TranslationFault):
            machine.walkers.walk(0, 0, 1, 0xDEAD000)

    def test_unmap_then_walk_faults(self):
        machine = Machine(SystemConfig(num_cores=1), scheme="baseline")
        machine.touch(0, 1, 0x1000)
        machine.host.vms[0].unmap(1, 0x1000)
        with pytest.raises(TranslationFault):
            machine.walkers.walk(0, 0, 1, 0x1000)

    def test_shootdown_storm_stays_consistent(self):
        """Unmap/remap churn must never leave stale translations behind.

        Unmap frees the frame and the LIFO free list hands it straight
        back on remap, so the churn must not grow the allocator — and
        the shot-down entry must be gone even though the *same* frame
        comes back (address reuse is exactly when staleness would hide).
        """
        machine = Machine(SystemConfig(num_cores=1), scheme="pom")
        baseline_bytes = None
        for round_number in range(30):
            va = 0x4000
            page = machine.touch(0, 1, va)
            machine.scheme.translate(0, 0, 1, va, page)
            machine.host.vms[0].unmap(1, va)
            machine.shootdown(0, 1, va)
            fresh = machine.touch(0, 1, va)
            assert fresh.host_frame == page.host_frame  # frame reclaimed
            if baseline_bytes is None:
                baseline_bytes = machine.host.memory.bytes_allocated
            else:
                assert machine.host.memory.bytes_allocated == baseline_bytes
            result = machine.scheme.translate(0, 0, 1, va, fresh)
            assert result.l2_miss  # stale entry never survives
        assert machine.stats["mmu"]["shootdowns"] == 30

    def test_pom_never_returns_stale_frame_after_remap(self):
        machine = Machine(SystemConfig(num_cores=1), scheme="pom")
        va = 0x8000
        page = machine.touch(0, 1, va)
        machine.scheme.translate(0, 0, 1, va, page)
        machine.host.vms[0].unmap(1, va)
        machine.shootdown(0, 1, va)
        fresh = machine.touch(0, 1, va)
        machine.scheme.translate(0, 0, 1, va, fresh)
        from repro.tlb.entry import TlbKey
        key = TlbKey(0, 1, va >> addr.SMALL_PAGE_SHIFT, False).pack()
        entry = machine.scheme.pom.probe(va, key)
        assert entry.ppn == fresh.host_frame >> addr.SMALL_PAGE_SHIFT


class TestScaleLimits:
    def test_32_core_machine_runs(self):
        """Section 4.6 mentions 32-core experiments; the model scales."""
        machine = Machine(SystemConfig(num_cores=32), scheme="pom", seed=2)
        streams = []
        for core in range(32):
            refs = [MemoryReference((i + 1) * 10,
                                    i * addr.SMALL_PAGE_SIZE, False)
                    for i in range(40)]
            streams.append(CoreStream(core=core, vm_id=0, asid=core + 1,
                                      references=refs))
        result = machine.run(streams)
        assert result.references == 32 * 40
        assert machine.stats["core31.l2_tlb"]["misses"] > 0

    def test_many_vms_coexist(self):
        machine = Machine(SystemConfig(num_cores=4), scheme="pom", seed=2)
        for vm_id in range(1, 17):
            machine.touch(vm_id, 1, 0x1000)
        assert len(machine.host.vms) == 16
        # POM-TLB keeps them apart: insert all, probe all.
        for vm_id in range(1, 17):
            page = machine.touch(vm_id, 1, 0x1000)
            machine.scheme.translate(0, vm_id, 1, 0x1000, page)
        occupancy = machine.scheme.pom.occupancy()
        assert occupancy["small"] + occupancy["large"] == 16
