"""End-to-end integration: traces -> simulation -> figures -> CLI."""

import io

import pytest

from repro.cli import main as cli_main
from repro.common.config import SystemConfig
from repro.core.system import Machine
from repro.experiments.campaign import run_all
from repro.experiments.runner import ExperimentParams
from repro.workloads.suite import get_profile
from repro.workloads.trace import load_stream, save_stream


class TestTraceRoundtripThroughSimulation:
    def test_saved_trace_reproduces_simulation(self, tmp_path):
        profile = get_profile("gcc")
        workload = profile.build(num_cores=1, refs_per_core=400,
                                 seed=5, scale=0.03)
        # Serialize, reload, and re-run: results must be identical.
        path = str(tmp_path / "gcc.trace.gz")
        save_stream(workload.streams[0], path)
        reloaded = load_stream(path)

        results = []
        for streams in (workload.streams, [reloaded]):
            machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                              thp_large_fraction=profile.thp_large_fraction,
                              seed=5)
            results.append(machine.run(
                streams, warmup_references=workload.warmup_references))
        assert results[0].l2_tlb_misses == results[1].l2_tlb_misses
        assert results[0].penalty_cycles == results[1].penalty_cycles


class TestDeterminism:
    def test_identical_runs_produce_identical_stats(self):
        profile = get_profile("canneal")
        workload = profile.build(num_cores=2, refs_per_core=400,
                                 seed=9, scale=0.03)
        snapshots = []
        for _ in range(2):
            machine = Machine(SystemConfig(num_cores=2), scheme="pom",
                              thp_large_fraction=profile.thp_large_fraction,
                              seed=9)
            machine.run(workload.streams,
                        warmup_references=workload.warmup_references)
            snapshots.append(machine.stats.as_nested_dict())
        assert snapshots[0] == snapshots[1]


class TestCampaign:
    def test_tiny_campaign_produces_all_reports(self):
        params = ExperimentParams(num_cores=1, refs_per_core=300,
                                  scale=0.02, seed=2)
        out = io.StringIO()
        progress = io.StringIO()
        reports = run_all(params, benchmarks=["gcc", "canneal"], out=out,
                          include_sensitivity=False, progress=progress)
        titles = [r.title for r in reports]
        assert any("Table 1" in t for t in titles)
        assert any("Figure 8" in t for t in titles)
        assert any("Figure 12" in t for t in titles)
        # Timing goes to the progress stream; the report stays deterministic.
        assert "campaign finished" in progress.getvalue()
        assert "campaign finished" not in out.getvalue()


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "campaign" in out

    def test_static_figure(self, capsys):
        assert cli_main(["fig4"]) == 0
        assert "16MiB" in capsys.readouterr().out

    def test_table(self, capsys):
        assert cli_main(["table2"]) == 0
        assert "ccomponent" in capsys.readouterr().out

    def test_dynamic_figure_with_output_file(self, tmp_path):
        out = tmp_path / "fig9.txt"
        code = cli_main(["fig9", "--benchmarks", "gcc", "--cores", "1",
                         "--refs", "300", "--scale", "0.02",
                         "--output", str(out)])
        assert code == 0
        assert "Figure 9" in out.read_text()

    def test_unknown_benchmark_rejected(self, capsys):
        assert cli_main(["fig9", "--benchmarks", "nope"]) == 2

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            cli_main(["fig99"])


class TestCliBars:
    def test_bar_chart_rendering(self, capsys):
        assert cli_main(["fig4", "--bars", "normalised_latency"]) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "16MiB" in out

    def test_bad_bar_column_fails_loudly(self):
        with pytest.raises(ValueError):
            cli_main(["fig4", "--bars", "nonexistent"])
