"""Unit tests for the L4 DRAM data cache (Section 2.2 alternative)."""

import pytest

from repro.cache.dram_cache import DramDataCache
from repro.cache.hierarchy import CacheHierarchy
from repro.common import addr
from repro.common.config import SystemConfig, stacked_dram_timing
from repro.common.stats import StatGroup, StatRegistry


def make_l4(size=1 * addr.MiB):
    return DramDataCache(size, stacked_dram_timing(), 4000, StatGroup("l4"))


class TestDramDataCache:
    def test_cold_probe_misses_but_charges_cycles(self):
        l4 = make_l4()
        probe = l4.access(0x1000)
        assert not probe.hit
        assert probe.cycles > 0

    def test_fill_then_hit(self):
        l4 = make_l4()
        l4.access(0x1000)
        l4.fill(0x1000)
        probe = l4.access(0x1000)
        assert probe.hit
        assert l4.contains(0x1000)

    def test_hit_is_line_granular(self):
        l4 = make_l4()
        l4.fill(0x1000)
        assert l4.access(0x103F).hit
        assert not l4.access(0x1040).hit

    def test_direct_mapped_conflict(self):
        l4 = make_l4(size=64 * addr.KiB)  # 1024 lines
        l4.fill(0)
        conflicting = 1024 * 64  # same index, different tag
        evicted = l4.fill(conflicting)
        assert evicted == 0
        assert not l4.contains(0)
        assert l4.contains(conflicting)

    def test_invalidate(self):
        l4 = make_l4()
        l4.fill(0x2000)
        assert l4.invalidate(0x2000)
        assert not l4.contains(0x2000)
        assert not l4.invalidate(0x2000)

    def test_hit_rate(self):
        l4 = make_l4()
        l4.fill(0x1000)
        l4.access(0x1000)
        l4.access(0x9999000)
        assert l4.hit_rate() == pytest.approx(0.5)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            DramDataCache(100, stacked_dram_timing(), 4000, StatGroup("x"))
        with pytest.raises(ValueError):
            DramDataCache(192 * 1024, stacked_dram_timing(), 4000,
                          StatGroup("x"))


class TestHierarchyWithL4:
    def make(self, l4_bytes):
        config = SystemConfig(num_cores=1, l4_data_cache_bytes=l4_bytes)
        return CacheHierarchy(config, StatRegistry())

    def test_disabled_by_default(self):
        assert self.make(0).l4 is None

    def test_enabled_when_configured(self):
        hierarchy = self.make(addr.MiB)
        assert hierarchy.l4 is not None

    def test_l4_hit_cheaper_than_main_memory(self):
        with_l4 = self.make(addr.MiB)
        # Fill through one access; evict from SRAM levels; re-access.
        with_l4.data_access(0, 0x5000)
        with_l4.l1(0).invalidate(0x5000)
        with_l4.l2(0).invalidate(0x5000)
        with_l4.l3.invalidate(0x5000)
        hit_cycles = with_l4.data_access(0, 0x5000)
        without = self.make(0)
        without.data_access(0, 0x5000)
        without.l1(0).invalidate(0x5000)
        without.l2(0).invalidate(0x5000)
        without.l3.invalidate(0x5000)
        # The L4 hit should not exceed the off-chip re-access (row hit).
        assert hit_cycles <= without.data_access(0, 0x5000) + 8

    def test_invalidate_line_reaches_l4(self):
        hierarchy = self.make(addr.MiB)
        hierarchy.data_access(0, 0x7000)
        assert hierarchy.l4.contains(0x7000)
        hierarchy.invalidate_line(0x7000)
        assert not hierarchy.l4.contains(0x7000)
