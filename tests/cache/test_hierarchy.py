"""Unit tests for the cache hierarchy / miss path."""

import pytest

from repro.cache.hierarchy import CacheHierarchy
from repro.common.config import SystemConfig
from repro.common.stats import StatRegistry


@pytest.fixture
def hierarchy():
    return CacheHierarchy(SystemConfig(num_cores=2), StatRegistry())


class TestDataPath:
    def test_cold_access_goes_to_dram(self, hierarchy):
        cfg = hierarchy.config
        cycles = hierarchy.data_access(0, 0x1000)
        min_sram = (cfg.l1d.latency_cycles + cfg.l2d.latency_cycles
                    + cfg.l3d.latency_cycles)
        assert cycles > min_sram  # DRAM latency added

    def test_second_access_hits_l1(self, hierarchy):
        hierarchy.data_access(0, 0x1000)
        assert hierarchy.data_access(0, 0x1000) == hierarchy.config.l1d.latency_cycles

    def test_miss_path_fills_all_levels(self, hierarchy):
        hierarchy.data_access(0, 0x1000)
        assert hierarchy.l1(0).contains(0x1000)
        assert hierarchy.l2(0).contains(0x1000)
        assert hierarchy.l3.contains(0x1000)

    def test_other_core_hits_shared_l3(self, hierarchy):
        hierarchy.data_access(0, 0x1000)
        cycles = hierarchy.data_access(1, 0x1000)
        assert cycles == hierarchy.config.l3d.latency_cycles

    def test_pte_access_uses_data_path(self, hierarchy):
        hierarchy.pte_access(0, 0x2000)
        assert hierarchy.l1(0).contains(0x2000)


class TestTlbLinePath:
    def test_probe_misses_cold(self, hierarchy):
        cycles, level = hierarchy.tlb_line_probe(0, 0x5000)
        assert level is None
        # Load-to-use semantics: the L3 lookup time covers the whole
        # on-chip search before heading to DRAM.
        assert cycles == hierarchy.config.l3d.latency_cycles

    def test_probe_does_not_touch_l1(self, hierarchy):
        hierarchy.tlb_line_fill(0, 0x5000)
        hierarchy.tlb_line_probe(0, 0x5000)
        assert not hierarchy.l1(0).contains(0x5000)

    def test_fill_then_probe_hits_l2(self, hierarchy):
        hierarchy.tlb_line_fill(0, 0x5000)
        cycles, level = hierarchy.tlb_line_probe(0, 0x5000)
        assert level == "l2"
        assert cycles == hierarchy.config.l2d.latency_cycles

    def test_other_core_hits_l3_and_promotes(self, hierarchy):
        hierarchy.tlb_line_fill(0, 0x5000)
        cycles, level = hierarchy.tlb_line_probe(1, 0x5000)
        assert level == "l3"
        # Promotion: next probe by core 1 hits its private L2.
        _, level2 = hierarchy.tlb_line_probe(1, 0x5000)
        assert level2 == "l2"

    def test_tlb_line_cached_is_side_effect_free(self, hierarchy):
        assert not hierarchy.tlb_line_cached(0, 0x5000)
        hierarchy.tlb_line_fill(0, 0x5000)
        assert hierarchy.tlb_line_cached(0, 0x5000)
        stats = hierarchy.l2(0).stats
        assert stats["tlb_hits"] == 0  # contains() recorded nothing

    def test_invalidate_line_everywhere(self, hierarchy):
        hierarchy.data_access(0, 0x7000)
        hierarchy.tlb_line_fill(1, 0x7000)
        hierarchy.invalidate_line(0x7000)
        assert not hierarchy.l1(0).contains(0x7000)
        assert not hierarchy.l2(1).contains(0x7000)
        assert not hierarchy.l3.contains(0x7000)


class TestLatencyAccumulation:
    def test_l2_hit_latency(self, hierarchy):
        hierarchy.data_access(0, 0x9000)
        # Evict from L1 only, by filling its set; easier: probe from the
        # same core after invalidating L1.
        hierarchy.l1(0).invalidate(0x9000)
        assert (hierarchy.data_access(0, 0x9000)
                == hierarchy.config.l2d.latency_cycles)

    def test_dram_stats_count_accesses(self, hierarchy):
        hierarchy.data_access(0, 0x1000)
        hierarchy.data_access(0, 0x1000)
        assert hierarchy.main_dram.stats["accesses"] == 1
