"""Unit tests for the set-associative cache model."""

from repro.cache.cache import DATA, TLB, SetAssociativeCache
from repro.common import addr
from repro.common.config import CacheConfig
from repro.common.stats import StatGroup


def make_cache(size=4 * addr.KiB, ways=2, tlb_priority=False):
    cfg = CacheConfig(name="c", size_bytes=size, ways=ways, latency_cycles=4)
    return SetAssociativeCache(cfg, StatGroup("c"), tlb_priority=tlb_priority)


def set_stride(cache):
    """Byte distance between two addresses mapping to the same set."""
    return cache.config.num_sets * cache.config.line_bytes


class TestBasicOperation:
    def test_cold_miss_then_hit(self):
        c = make_cache()
        assert not c.lookup(0x40)
        c.fill(0x40)
        assert c.lookup(0x40)

    def test_hit_covers_whole_line(self):
        c = make_cache()
        c.fill(0x40)
        assert c.lookup(0x7F)  # same 64B line
        assert not c.lookup(0x80)  # next line

    def test_contains_has_no_side_effects(self):
        c = make_cache()
        c.fill(0x40)
        assert c.contains(0x40)
        assert c.stats["data_hits"] == 0  # no stats recorded

    def test_fill_existing_line_does_not_grow(self):
        c = make_cache()
        c.fill(0x40)
        c.fill(0x40)
        assert len(c) == 1


class TestEviction:
    def test_lru_eviction_within_set(self):
        c = make_cache(ways=2)
        stride = set_stride(c)
        a, b, d = 0, stride, 2 * stride  # all map to set 0
        c.fill(a)
        c.fill(b)
        c.lookup(a)          # refresh a; b becomes LRU
        evicted = c.fill(d)
        assert evicted == b
        assert c.contains(a) and c.contains(d) and not c.contains(b)

    def test_eviction_returns_line_address(self):
        c = make_cache(ways=1)
        stride = set_stride(c)
        c.fill(0x40)
        evicted = c.fill(0x40 + stride)
        assert evicted == 0x40  # line-aligned address of the victim

    def test_no_eviction_below_capacity(self):
        c = make_cache(ways=2)
        assert c.fill(0) is None
        assert c.fill(set_stride(c)) is None

    def test_different_sets_do_not_interfere(self):
        c = make_cache(ways=1)
        c.fill(0)
        c.fill(64)  # next set
        assert c.contains(0) and c.contains(64)


class TestKinds:
    def test_kind_statistics_are_separate(self):
        c = make_cache()
        c.lookup(0, DATA)
        c.lookup(64, TLB)
        assert c.stats["data_misses"] == 1
        assert c.stats["tlb_misses"] == 1

    def test_occupancy_by_kind(self):
        c = make_cache()
        c.fill(0, DATA)
        c.fill(64, TLB)
        assert c.occupancy() == {DATA: 1, TLB: 1}

    def test_eviction_counts_victim_kind(self):
        c = make_cache(ways=1)
        stride = set_stride(c)
        c.fill(0, TLB)
        c.fill(stride, DATA)
        assert c.stats["tlb_evictions"] == 1

    def test_hit_rate_per_kind(self):
        c = make_cache()
        c.fill(0, DATA)
        c.lookup(0, DATA)
        c.lookup(4096, DATA)
        assert 0 < c.hit_rate(DATA) < 1


class TestTlbPriority:
    def test_priority_mode_prefers_evicting_data(self):
        c = make_cache(ways=2, tlb_priority=True)
        stride = set_stride(c)
        c.fill(0, TLB)
        c.fill(stride, DATA)
        c.lookup(stride)  # data line is most recent; plain LRU would evict TLB
        evicted = c.fill(2 * stride, DATA)
        assert evicted == stride  # data line evicted despite recency

    def test_priority_mode_evicts_tlb_when_set_is_all_tlb(self):
        c = make_cache(ways=2, tlb_priority=True)
        stride = set_stride(c)
        c.fill(0, TLB)
        c.fill(stride, TLB)
        evicted = c.fill(2 * stride, TLB)
        assert evicted == 0

    def test_default_mode_is_pure_lru(self):
        c = make_cache(ways=2, tlb_priority=False)
        stride = set_stride(c)
        c.fill(0, TLB)
        c.fill(stride, DATA)
        c.lookup(stride)
        evicted = c.fill(2 * stride, DATA)
        assert evicted == 0  # the TLB line was LRU


class TestInvalidateAndFlush:
    def test_invalidate(self):
        c = make_cache()
        c.fill(0x40)
        assert c.invalidate(0x40)
        assert not c.contains(0x40)

    def test_invalidate_missing_returns_false(self):
        c = make_cache()
        assert not c.invalidate(0x40)

    def test_flush_empties_cache(self):
        c = make_cache()
        for i in range(8):
            c.fill(i * 64)
        c.flush()
        assert len(c) == 0

    def test_refill_after_invalidate_works(self):
        c = make_cache(ways=1)
        c.fill(0)
        c.invalidate(0)
        c.fill(0)
        assert c.contains(0)
