"""Unit tests for replacement policies."""

import random

import pytest

from repro.cache.replacement import (
    FifoPolicy,
    LruPolicy,
    RandomPolicy,
    make_policy,
)


class TestLruPolicy:
    def test_victim_is_least_recent(self):
        p = LruPolicy()
        p.touch("a")
        p.touch("b")
        p.touch("c")
        assert p.victim() == "a"

    def test_touch_refreshes(self):
        p = LruPolicy()
        p.touch("a")
        p.touch("b")
        p.touch("a")
        assert p.victim() == "b"

    def test_remove(self):
        p = LruPolicy()
        p.touch("a")
        p.touch("b")
        p.remove("a")
        assert p.victim() == "b"
        assert len(p) == 1

    def test_remove_missing_is_noop(self):
        p = LruPolicy()
        p.remove("ghost")
        assert len(p) == 0

    def test_keys_in_recency_order(self):
        p = LruPolicy()
        for k in "abc":
            p.touch(k)
        p.touch("a")
        assert list(p.keys()) == ["b", "c", "a"]


class TestFifoPolicy:
    def test_hit_does_not_refresh(self):
        p = FifoPolicy()
        p.touch("a")
        p.touch("b")
        p.touch("a")  # re-touch must not move "a" back
        assert p.victim() == "a"

    def test_remove(self):
        p = FifoPolicy()
        p.touch("a")
        p.touch("b")
        p.remove("a")
        assert p.victim() == "b"


class TestRandomPolicy:
    def test_victim_is_member(self):
        p = RandomPolicy(random.Random(0))
        for k in range(10):
            p.touch(k)
        for _ in range(20):
            assert p.victim() in set(p.keys())

    def test_remove_keeps_members_consistent(self):
        p = RandomPolicy(random.Random(0))
        for k in range(5):
            p.touch(k)
        p.remove(2)
        assert 2 not in set(p.keys())
        assert len(p) == 4

    def test_double_touch_is_idempotent(self):
        p = RandomPolicy(random.Random(0))
        p.touch("a")
        p.touch("a")
        assert len(p) == 1


class TestMakePolicy:
    @pytest.mark.parametrize("name,cls", [
        ("lru", LruPolicy), ("fifo", FifoPolicy), ("random", RandomPolicy)])
    def test_known_names(self, name, cls):
        assert isinstance(make_policy(name), cls)

    def test_unknown_name_raises(self):
        with pytest.raises(ValueError):
            make_policy("plru")
