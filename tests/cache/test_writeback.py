"""Unit tests for dirty-line tracking and write-back modeling."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.cache.hierarchy import CacheHierarchy
from repro.common import addr
from repro.common.config import CacheConfig, SystemConfig
from repro.common.stats import StatGroup, StatRegistry


def small_cache(ways=1):
    cfg = CacheConfig(name="c", size_bytes=2 * addr.KiB, ways=ways,
                      latency_cycles=4)
    return SetAssociativeCache(cfg, StatGroup("c"))


class TestDirtyTracking:
    def test_mark_dirty_requires_residency(self):
        c = small_cache()
        assert not c.mark_dirty(0x40)
        c.fill(0x40)
        assert c.mark_dirty(0x40)
        assert c.is_dirty(0x40)

    def test_fill_dirty(self):
        c = small_cache()
        c.fill(0x40, dirty=True)
        assert c.is_dirty(0x40)

    def test_eviction_reports_dirtiness(self):
        c = small_cache(ways=1)
        stride = c.config.num_sets * 64
        c.fill(0x40, dirty=True)
        evicted = c.fill(0x40 + stride)
        assert evicted == 0x40
        assert c.last_evicted_dirty

    def test_clean_eviction_not_flagged(self):
        c = small_cache(ways=1)
        stride = c.config.num_sets * 64
        c.fill(0x40)
        c.fill(0x40 + stride)
        assert not c.last_evicted_dirty

    def test_invalidate_clears_dirty(self):
        c = small_cache()
        c.fill(0x40, dirty=True)
        c.invalidate(0x40)
        c.fill(0x40)
        assert not c.is_dirty(0x40)

    def test_flush_clears_dirty(self):
        c = small_cache()
        c.fill(0x40, dirty=True)
        c.flush()
        c.fill(0x40)
        assert not c.is_dirty(0x40)


class TestHierarchyWriteback:
    def make(self, enabled):
        config = SystemConfig(num_cores=1, writeback_modeling=enabled)
        stats = StatRegistry()
        return CacheHierarchy(config, stats), stats

    def test_disabled_by_default_no_wb_stats(self):
        hierarchy, stats = self.make(False)
        hierarchy.data_access(0, 0x1000, is_write=True)
        assert stats["writebacks"].as_dict() == {}

    def test_write_dirties_l1(self):
        hierarchy, _ = self.make(True)
        hierarchy.data_access(0, 0x1000, is_write=True)
        assert hierarchy.l1(0).is_dirty(0x1000)

    def test_dirty_l1_victim_lands_in_l2(self):
        hierarchy, stats = self.make(True)
        hierarchy.data_access(0, 0x1000, is_write=True)
        # Evict 0x1000 from L1 by filling its set (8 ways, 64 sets).
        l1_stride = 64 * 64
        for i in range(1, 10):
            hierarchy.data_access(0, 0x1000 + i * l1_stride)
        assert stats["writebacks"]["l1_to_l2"] >= 1
        assert hierarchy.l2(0).is_dirty(0x1000)

    def test_reads_never_write_back(self):
        hierarchy, stats = self.make(True)
        for i in range(200):
            hierarchy.data_access(0, 0x1000 + i * 4096, is_write=False)
        assert stats["writebacks"].as_dict() == {}

    def test_dirty_chain_reaches_memory_under_pressure(self):
        hierarchy, stats = self.make(True)
        # Stream writes through more lines than the 8 MiB L3 holds
        # (131072): dirty victims must eventually leave for memory.
        for i in range(140_000):
            hierarchy.data_access(0, i * 64, is_write=True)
        assert stats["writebacks"]["l3_to_memory"] > 0

    def test_default_behaviour_identical_with_flag_off(self):
        """The flag must not perturb hit/miss behaviour when off."""
        plain, plain_stats = self.make(False)
        seq = [(i * 4096) % (1 << 20) for i in range(3000)]
        cycles_plain = [plain.data_access(0, a, is_write=i % 3 == 0)
                        for i, a in enumerate(seq)]
        again, _ = self.make(False)
        cycles_again = [again.data_access(0, a, is_write=i % 3 == 0)
                        for i, a in enumerate(seq)]
        assert cycles_plain == cycles_again
