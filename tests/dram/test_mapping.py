"""Unit tests for DRAM address mapping."""

from repro.common.config import stacked_dram_timing
from repro.dram.mapping import AddressMapper


def make_mapper():
    return AddressMapper(stacked_dram_timing())


class TestAddressMapper:
    def test_column_is_offset_in_row(self):
        m = make_mapper()
        assert m.map(0).column == 0
        assert m.map(100).column == 100
        assert m.map(2048).column == 0

    def test_addresses_in_same_2k_block_share_bank_and_row(self):
        m = make_mapper()
        a, b = m.map(0x1000), m.map(0x17FF)
        assert (a.bank, a.row) == (b.bank, b.row)

    def test_consecutive_blocks_rotate_banks(self):
        m = make_mapper()
        banks = [m.map(i * 2048).bank for i in range(16)]
        assert banks == list(range(16))

    def test_row_increments_after_bank_wrap(self):
        m = make_mapper()
        assert m.map(0).row == 0
        assert m.map(16 * 2048).row == 1

    def test_same_row_helper(self):
        m = make_mapper()
        assert m.same_row(0x100, 0x200)
        assert not m.same_row(0x100, 0x100 + 2048)

    def test_mapping_is_injective_over_a_window(self):
        m = make_mapper()
        seen = set()
        for paddr in range(0, 64 * 2048, 64):
            c = m.map(paddr)
            key = (c.bank, c.row, c.column)
            assert key not in seen
            seen.add(key)
