"""Unit tests for the DRAM channel model."""

import pytest

from repro.common.config import ddr4_timing, stacked_dram_timing
from repro.common.stats import StatGroup
from repro.dram.channel import DramChannel, typical_latencies


def make_channel(timing=None, cpu_mhz=4000):
    stats = StatGroup("dram")
    return DramChannel(timing or stacked_dram_timing(), cpu_mhz, stats), stats


class TestDramChannel:
    def test_latency_is_cpu_cycles(self):
        ch, _ = make_channel()
        # Cold access: controller(2) + tRCD+tCAS(22) + burst(64B over
        # 32B/bus-cycle = 2) = 26 bus cycles = 104 CPU cycles at 4x clock.
        assert ch.access(0) == 104

    def test_row_hit_is_cheaper(self):
        ch, _ = make_channel()
        cold = ch.access(0)
        warm = ch.access(64)  # same 2KiB row
        assert warm < cold
        assert warm == (2 + 11 + 2) * 4

    def test_row_buffer_hit_rate(self):
        ch, _ = make_channel()
        ch.access(0)
        ch.access(64)
        ch.access(128)
        assert ch.row_buffer_hit_rate() == pytest.approx(2 / 3)

    def test_hit_rate_zero_when_untouched(self):
        ch, _ = make_channel()
        assert ch.row_buffer_hit_rate() == 0.0

    def test_bytes_and_access_counters(self):
        ch, stats = make_channel()
        ch.access(0)
        ch.access(4096, nbytes=128)
        assert stats["accesses"] == 2
        assert stats["bytes"] == 64 + 128

    def test_precharge_all_closes_rows(self):
        ch, _ = make_channel()
        ch.access(0)
        ch.precharge_all()
        # After precharge the same row is a miss, not a hit.
        assert ch.access(0) == (2 + 22 + 2) * 4

    def test_ddr4_is_slower_than_stacked(self):
        stacked, _ = make_channel(stacked_dram_timing())
        ddr4, _ = make_channel(ddr4_timing())
        assert ddr4.access(0) > stacked.access(0)

    def test_banks_exposed(self):
        ch, _ = make_channel()
        assert ch.banks == 16


class TestTypicalLatencies:
    def test_ordering(self):
        lat = typical_latencies(stacked_dram_timing(), 4000)
        assert lat["row_hit"] < lat["row_miss"] < lat["row_conflict"]

    def test_values_are_cpu_cycles(self):
        lat = typical_latencies(stacked_dram_timing(), 4000)
        assert lat["row_hit"] == (2 + 2 + 11) * 4
