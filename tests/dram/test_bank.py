"""Unit tests for the DRAM bank row-buffer model."""

from repro.common.config import stacked_dram_timing
from repro.common.stats import StatGroup
from repro.dram.bank import DramBank


def make_bank():
    stats = StatGroup("bank")
    return DramBank(0, stacked_dram_timing(), stats), stats


class TestDramBank:
    def test_first_access_is_row_miss(self):
        bank, stats = make_bank()
        cost = bank.access(5)
        assert cost == 11 + 11  # tRCD + tCAS
        assert stats["row_misses"] == 1

    def test_repeat_access_is_row_hit(self):
        bank, stats = make_bank()
        bank.access(5)
        cost = bank.access(5)
        assert cost == 11  # tCAS only
        assert stats["row_hits"] == 1

    def test_different_row_is_conflict(self):
        bank, stats = make_bank()
        bank.access(5)
        cost = bank.access(6)
        assert cost == 11 + 11 + 11  # tRP + tRCD + tCAS
        assert stats["row_conflicts"] == 1
        assert bank.open_row == 6

    def test_precharge_resets_to_idle(self):
        bank, stats = make_bank()
        bank.access(5)
        bank.precharge()
        assert bank.open_row is None
        cost = bank.access(5)
        assert cost == 22  # row miss again, not a conflict
        assert stats["row_misses"] == 2

    def test_open_row_tracks_last_access(self):
        bank, _ = make_bank()
        assert bank.open_row is None
        bank.access(3)
        assert bank.open_row == 3
