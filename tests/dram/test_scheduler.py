"""Unit tests for the command-level FR-FCFS DRAM scheduler."""

import pytest

from repro.common.config import stacked_dram_timing
from repro.common.stats import StatGroup
from repro.dram.scheduler import (
    CommandScheduler,
    Request,
    summarize_latencies,
)


def make_scheduler():
    return CommandScheduler(stacked_dram_timing(), StatGroup("s"))


def row_addr(row, column=0):
    return row * 2048 + column


class TestBasicService:
    def test_single_request_completes(self):
        sched = make_scheduler()
        request = Request(paddr=0, arrival=0)
        sched.run([request])
        # Cold access: ACT(tRCD) + RD(tCL) + burst at minimum.
        timing = stacked_dram_timing()
        assert request.completion >= timing.trcd + timing.tcas
        assert request.latency == request.completion

    def test_row_hit_is_faster_than_cold(self):
        sched = make_scheduler()
        first = Request(paddr=row_addr(5), arrival=0)
        second = Request(paddr=row_addr(5, 64), arrival=1000)
        sched.run([first, second])
        assert second.latency < first.latency

    def test_row_conflict_pays_precharge(self):
        timing = stacked_dram_timing()
        sched = make_scheduler()
        first = Request(paddr=row_addr(0), arrival=0)
        # Same bank (row 16 maps to bank 0 with 16 banks), different row.
        conflict = Request(paddr=row_addr(16), arrival=1000)
        sched.run([first, conflict])
        assert conflict.latency >= timing.trp + timing.trcd + timing.tcas

    def test_all_requests_serviced(self):
        sched = make_scheduler()
        requests = [Request(paddr=row_addr(i % 7), arrival=i * 3)
                    for i in range(50)]
        sched.run(requests)
        assert all(r.completion >= r.arrival for r in requests)
        assert sched.stats["serviced"] == 50

    def test_latency_before_run_raises(self):
        with pytest.raises(ValueError):
            Request(paddr=0, arrival=0).latency


class TestBusSerialization:
    def test_simultaneous_requests_serialize_on_the_bus(self):
        sched = make_scheduler()
        # Two row hits on different banks, same instant: bursts cannot
        # overlap on the shared data bus.
        warm = [Request(paddr=row_addr(0), arrival=0),
                Request(paddr=row_addr(1), arrival=0)]
        sched.run(warm)
        a = [r for r in warm][0]
        b = [r for r in warm][1]
        assert abs(a.completion - b.completion) >= sched._burst


class TestFrFcfs:
    def test_row_hit_bypasses_older_conflict(self):
        sched = make_scheduler()
        # Open row 3 in bank 3.
        opener = Request(paddr=row_addr(3), arrival=0)
        sched.run([opener])
        # A blocker occupies the scheduler long enough for both later
        # requests to arrive; then FR-FCFS must serve the younger row
        # hit before the older bank-3 conflict.
        blocker = Request(paddr=row_addr(8), arrival=100)
        conflict = Request(paddr=row_addr(19), arrival=101)  # bank 3, row 1
        hit = Request(paddr=row_addr(3, 128), arrival=102)   # bank 3, row 0
        sched.run([blocker, conflict, hit])
        assert hit.completion < conflict.completion


class TestActivateWindow:
    def test_tfaw_limits_activation_bursts(self):
        timing = stacked_dram_timing()
        sched = make_scheduler()
        # Five cold accesses to five different banks, all at time 0: the
        # fifth ACT must wait for the tFAW window.
        requests = [Request(paddr=row_addr(bank), arrival=0)
                    for bank in range(5)]
        sched.run(requests)
        completions = sorted(r.completion for r in requests)
        tfaw = sched._tfaw
        assert completions[4] >= tfaw


class TestWriteHandling:
    def test_write_recovery_delays_precharge(self):
        timing = stacked_dram_timing()
        sched = make_scheduler()
        write = Request(paddr=row_addr(0), arrival=0, is_write=True)
        conflict = Request(paddr=row_addr(16), arrival=1)  # same bank
        sched.run([write, conflict])
        # The conflicting activate must wait for tWR after the write.
        assert conflict.completion >= write.completion + sched._twr

    def test_write_read_counters(self):
        sched = make_scheduler()
        sched.run([Request(paddr=0, arrival=0, is_write=True),
                   Request(paddr=64, arrival=50, is_write=False)])
        assert sched.stats["writes"] == 1
        assert sched.stats["reads"] == 1


class TestSummaries:
    def test_summary_by_tag(self):
        sched = make_scheduler()
        requests = [Request(paddr=row_addr(i), arrival=i * 100, tag="tlb")
                    for i in range(10)]
        requests += [Request(paddr=row_addr(i + 32), arrival=i * 100,
                             tag="data") for i in range(10)]
        sched.run(requests)
        tlb = summarize_latencies(requests, "tlb")
        everything = summarize_latencies(requests)
        assert tlb.count == 10
        assert everything.count == 20
        assert tlb.mean <= tlb.p95 <= tlb.worst

    def test_empty_summary(self):
        summary = summarize_latencies([], "tlb")
        assert summary.count == 0 and summary.mean == 0.0
