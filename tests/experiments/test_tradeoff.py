"""Unit tests for the Section 2.2 trade-off experiment."""

import pytest

from repro.experiments.runner import ExperimentParams, SuiteRunner
from repro.experiments.tradeoff import tradeoff_l4_vs_tlb

TINY = ExperimentParams(num_cores=1, refs_per_core=400, scale=0.02, seed=3)


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(TINY)


class TestTradeoff:
    def test_structure(self, runner):
        report = tradeoff_l4_vs_tlb(runner, ["gcc", "canneal"])
        assert report.headers == ("benchmark", "l4_data_saving",
                                  "pom_translation_saving", "winner")
        assert len(report.rows) == 2

    def test_winner_labels(self, runner):
        report = tradeoff_l4_vs_tlb(runner, ["gcc"])
        assert report.rows[0][3] in ("pom_tlb", "l4_cache")

    def test_l4_machine_actually_has_l4(self, runner):
        import dataclasses
        params = dataclasses.replace(TINY,
                                     l4_data_cache_bytes=TINY.pom_size_bytes)
        run = runner.run("gcc", "baseline", params)
        assert "l4_cache" in run.result.stats.groups()


class TestConsolidationStudy:
    def test_structure_and_pom_wins(self):
        from repro.experiments.consolidation import consolidation_study
        from repro.experiments.runner import ExperimentParams
        params = ExperimentParams(num_cores=2, refs_per_core=300,
                                  scale=0.02, seed=4)
        report = consolidation_study(params, benchmarks=["gcc", "canneal"])
        assert [row[0] for row in report.rows] == ["baseline", "pom"]
        baseline, pom = report.rows
        assert pom[2] <= baseline[2]   # POM never walks more
        assert pom[4] >= baseline[4]   # walk elimination
