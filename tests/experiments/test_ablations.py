"""Unit tests for the ablation drivers (tiny configurations)."""

import pytest

from repro.experiments import ablations
from repro.experiments.runner import ExperimentParams, SuiteRunner

TINY = ExperimentParams(num_cores=1, refs_per_core=400, scale=0.02, seed=3)
SUBSET = ["gcc", "canneal"]


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(TINY)


class TestTlbPriorityAblation:
    def test_structure(self, runner):
        report = ablations.ablation_tlb_priority(runner, SUBSET)
        assert report.headers == ("benchmark", "lru", "tlb_priority")
        assert [row[0] for row in report.rows] == SUBSET + ["geomean"]

    def test_values_finite(self, runner):
        report = ablations.ablation_tlb_priority(runner, SUBSET)
        for row in report.rows:
            assert -100 < row[1] < 100
            assert -100 < row[2] < 100


class TestPredictorAblation:
    def test_all_variants_present(self, runner):
        report = ablations.ablation_predictor(runner, SUBSET)
        labels = [row[0] for row in report.rows]
        assert labels == ["512x1bit (paper)", "512x2bit", "2048x1bit"]

    def test_accuracies_are_probabilities(self, runner):
        report = ablations.ablation_predictor(runner, SUBSET)
        for row in report.rows:
            assert 0.0 <= row[2] <= 1.0


class TestBypassAblation:
    def test_structure(self, runner):
        report = ablations.ablation_bypass(runner, SUBSET)
        assert report.headers == ("benchmark", "bypass_on", "bypass_off")
        assert report.rows[-1][0] == "geomean"

    def test_bypass_off_disables_dram_bypass_path(self, runner):
        import dataclasses
        off = dataclasses.replace(TINY, bypass_enabled=False)
        run = runner.run("gcc", "pom", off)
        flow = run.result.stats.groups().get("pom_flow")
        assert flow is not None
        assert flow["set_from_dram_bypass"] == 0
