"""Makespan-aware scheduling: rate loading and LPT dispatch order."""

import dataclasses
import json

import pytest

from repro.experiments.runner import ExperimentParams
from repro.experiments.schedule import (
    DEFAULT_REFS_PER_SEC,
    cost_function,
    expected_cost,
    load_rates,
)
from repro.resilience import RunRequest

PARAMS = ExperimentParams(num_cores=2, refs_per_core=500, scale=0.05, seed=1)


def bench_json(tmp_path, schemes):
    path = tmp_path / "BENCH_engine.json"
    path.write_text(json.dumps(
        {"engine_throughput": {"schemes": schemes}}))
    return str(path)


class TestLoadRates:
    def test_missing_file_falls_back_to_defaults(self, tmp_path):
        rates = load_rates(str(tmp_path / "nope.json"))
        assert rates == DEFAULT_REFS_PER_SEC
        assert rates is not DEFAULT_REFS_PER_SEC  # caller-safe copy

    def test_damaged_json_falls_back(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text("{not json")
        assert load_rates(str(path)) == DEFAULT_REFS_PER_SEC

    def test_missing_section_falls_back(self, tmp_path):
        path = tmp_path / "BENCH_engine.json"
        path.write_text(json.dumps({"campaign": {}}))
        assert load_rates(str(path)) == DEFAULT_REFS_PER_SEC

    def test_measured_rates_override_defaults(self, tmp_path):
        path = bench_json(tmp_path, {"pom": {"refs_per_sec": 1234.5}})
        rates = load_rates(path)
        assert rates["pom"] == 1234.5
        # Schemes the file does not measure keep their frozen defaults.
        assert rates["baseline"] == DEFAULT_REFS_PER_SEC["baseline"]

    def test_zero_and_negative_rates_ignored(self, tmp_path):
        path = bench_json(tmp_path, {"pom": {"refs_per_sec": 0},
                                     "tsb": {"refs_per_sec": -5}})
        rates = load_rates(path)
        assert rates["pom"] == DEFAULT_REFS_PER_SEC["pom"]
        assert rates["tsb"] == DEFAULT_REFS_PER_SEC["tsb"]


class TestExpectedCost:
    def test_slower_scheme_costs_more(self):
        rates = dict(DEFAULT_REFS_PER_SEC)
        fast = RunRequest("gups", "baseline", PARAMS)
        slow = RunRequest("gups", "pom_skewed", PARAMS)
        assert expected_cost(slow, rates) > expected_cost(fast, rates)

    def test_more_references_cost_more(self):
        rates = dict(DEFAULT_REFS_PER_SEC)
        small = RunRequest("gups", "pom", PARAMS)
        big = RunRequest("gups", "pom",
                         dataclasses.replace(PARAMS, num_cores=8))
        assert expected_cost(big, rates) == \
            4 * expected_cost(small, rates)

    def test_unknown_scheme_gets_midpack_rate(self):
        cost = expected_cost(RunRequest("gups", "experimental", PARAMS), {})
        assert 0 < cost < PARAMS.num_cores * PARAMS.refs_per_core


class TestCostFunction:
    def test_resolves_rates_once(self, tmp_path):
        path = bench_json(tmp_path, {"pom": {"refs_per_sec": 100.0}})
        cost = cost_function(path)
        request = RunRequest("gups", "pom", PARAMS)
        before = cost(request)
        bench_json(tmp_path, {"pom": {"refs_per_sec": 999.0}})
        assert cost(request) == before  # no re-read per call

    def test_explicit_rates_skip_disk(self):
        cost = cost_function(rates={"pom": 500.0})
        assert cost(RunRequest("gups", "pom", PARAMS)) == \
            PARAMS.num_cores * PARAMS.refs_per_core / 500.0


class TestLptDispatch:
    def test_pooled_executor_sorts_longest_first(self, monkeypatch):
        """The executor hands the pool the todo list longest-first."""
        from repro.resilience import workers as workers_mod

        dispatched = []

        def fake_run_pooled(todo, workers, context):
            dispatched.extend(a.request.scheme for a in todo)
            for attempt in todo:
                outcome = context.outcomes[attempt.key]
                outcome.run = object()

        monkeypatch.setattr(workers_mod, "_run_pooled", fake_run_pooled)
        requests = [RunRequest("gups", scheme, PARAMS)
                    for scheme in ("baseline", "pom_skewed", "pom")]
        workers_mod.execute_runs(requests, workers=2,
                                 cost=cost_function(rates=dict(
                                     DEFAULT_REFS_PER_SEC)))
        # Longest first under DEFAULT_REFS_PER_SEC: pom is the slowest
        # scheme (lowest refs/sec), baseline the fastest.
        assert dispatched == ["pom", "pom_skewed", "baseline"]

    def test_serial_order_is_untouched(self, monkeypatch):
        from repro.resilience import workers as workers_mod

        executed = []

        def fake_simulate(request, fault):
            executed.append(request.scheme)
            return object()

        requests = [RunRequest("gups", scheme, PARAMS)
                    for scheme in ("baseline", "pom_skewed", "pom")]
        workers_mod.execute_runs(requests, workers=0,
                                 simulate=fake_simulate,
                                 cost=cost_function())
        assert executed == ["baseline", "pom_skewed", "pom"]


class TestPredictedCosts:
    def test_keys_map_to_costs(self):
        from repro.experiments.schedule import predicted_costs

        cost = cost_function(rates=dict(DEFAULT_REFS_PER_SEC))
        requests = [RunRequest("gups", "baseline", PARAMS),
                    RunRequest("gups", "pom_skewed", PARAMS)]
        predictions = predicted_costs(requests, cost,
                                      key=lambda r: r.scheme)
        assert set(predictions) == {"baseline", "pom_skewed"}
        assert predictions["pom_skewed"] > predictions["baseline"]
        assert predictions["baseline"] == cost(requests[0])

    def test_duplicate_keys_collapse(self):
        from repro.experiments.schedule import predicted_costs

        cost = cost_function(rates=dict(DEFAULT_REFS_PER_SEC))
        requests = [RunRequest("gups", "pom", PARAMS)] * 3
        predictions = predicted_costs(requests, cost,
                                      key=lambda r: r.scheme)
        assert len(predictions) == 1
