"""Unit tests for the per-benchmark details report."""

import pytest

from repro.experiments.details import benchmark_details
from repro.experiments.runner import ExperimentParams, SuiteRunner

# Large enough scale for steady-state misses to exist.
PARAMS = ExperimentParams(num_cores=1, refs_per_core=2000, scale=0.2,
                          seed=5)


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(PARAMS)


class TestBenchmarkDetails:
    def test_report_for_active_benchmark(self, runner):
        report = benchmark_details(runner, "gups")
        metrics = dict(zip(report.column("metric"), report.column("value")))
        assert metrics["L2 TLB misses"] > 0
        assert metrics["walk elimination"] > 0.9
        # Resolution shares are probabilities summing to ~1.
        shares = (metrics["resolved on first size try"]
                  + metrics["resolved on second size try"]
                  + metrics["resolved by page walk"])
        assert shares == pytest.approx(1.0, abs=1e-6)

    def test_set_fetch_shares_are_probabilities(self, runner):
        report = benchmark_details(runner, "gups")
        metrics = dict(zip(report.column("metric"), report.column("value")))
        fetch_share = (metrics["set fetches served by L2D$"]
                       + metrics["set fetches served by L3D$"]
                       + metrics["set fetches from stacked DRAM"])
        assert fetch_share == pytest.approx(1.0, abs=1e-6)

    def test_quiet_benchmark_degrades_gracefully(self, runner):
        # At this scale gcc has few or zero misses: the report must not
        # divide by zero.
        report = benchmark_details(runner, "gcc")
        assert report.row("references (steady state)")[1] > 0

    def test_memoised_with_figure_runs(self, runner):
        first = runner.run("gups", "pom")
        benchmark_details(runner, "gups")
        assert runner.run("gups", "pom") is first
