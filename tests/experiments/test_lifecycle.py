"""Lifecycle studies: churn acceptance, sweep engine-identity, CLI."""

import dataclasses

import pytest

from repro.cli import main
from repro.experiments.lifecycle import (ALL_SCHEMES, churn_study,
                                         migration_study, shootdown_sweep)
from repro.experiments.runner import ExperimentParams

FAST = ExperimentParams(num_cores=2, refs_per_core=300, scale=0.05,
                        seed=7, verify=True)


class TestChurnStudy:
    def test_churn_20_plus_teardowns_verified_and_bounded(self):
        """The PR's acceptance scenario: a 20+ boot/teardown churn runs
        to completion with the verifier armed (inclusion, stale-line,
        memory-conservation all checking every teardown) and the
        allocator returns to zero — reclamation, not leak-forever."""
        report = churn_study(FAST, benchmarks=("gups", "mcf"),
                             generations=11,  # 22 boots/teardowns
                             schemes=("baseline", "pom"))
        data = {row[0]: row for row in report.rows}
        for scheme in ("baseline", "pom"):
            final_bytes, peak_bytes = data[scheme][4], data[scheme][5]
            assert final_bytes == 0, "teardown leaked frames"
            assert peak_bytes > 0
        assert not any("leak" in note for note in report.notes)
        assert "22 boots, 22 teardowns" in report.notes[-1]

    def test_post_teardown_bytes_non_growing(self):
        """Single-slot churn: after every teardown the allocator is
        empty, so the post-teardown series is exactly non-growing."""
        from repro.common.config import SystemConfig
        from repro.core.system import Machine
        from repro.verify import Verifier
        from repro.workloads.lifecycle import build_churn

        wl = build_churn(["gups"], generations=20, refs_per_core=150,
                         seed=7, scale=0.05)
        samples = []

        class Sampler:
            def __init__(self, event):
                self.position = event.position
                self.event = event

            def apply(self, machine):
                self.event.apply(machine)
                samples.append(machine.host.memory.bytes_allocated)

        machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                          thp_fractions=wl.thp_fractions, seed=7,
                          verify=Verifier())
        machine.run(wl.streams, events=[Sampler(e) for e in wl.events])
        assert len(samples) == 20
        assert samples == [0] * 20          # exactly non-growing
        assert machine.host.memory.bytes_allocated == 0
        # LIFO reuse: 20 identical generations need one generation's
        # worth of frames, nowhere near the region size.
        peak = machine.host.memory.peak_bytes
        assert 0 < peak < machine.host.memory.size_bytes // 100


class TestMigrationStudy:
    def test_all_schemes_render(self):
        report = migration_study(FAST, benchmarks=("gups", "mcf"),
                                 bursts=2, schemes=ALL_SCHEMES)
        assert [row[0] for row in report.rows] == list(ALL_SCHEMES)
        text = report.render()
        for scheme in ALL_SCHEMES:
            assert scheme in text


class TestShootdownSweep:
    def test_rates_rows_for_all_five_schemes(self):
        report = shootdown_sweep(FAST, benchmark="gups",
                                 rates=(0.0, 20.0), schemes=ALL_SCHEMES)
        assert report.headers == ("shootdowns_per_1k_refs",) + ALL_SCHEMES
        assert [row[0] for row in report.rows] == [0.0, 20.0]
        for row in report.rows:
            assert len(row) == 1 + len(ALL_SCHEMES)

    def test_sweep_byte_identical_scalar_vs_batch(self):
        """Engine independence: forcing the scalar loop renders the very
        same report bytes as letting the batch engine take whatever it
        soundly can (the rate-0 control row)."""
        batch = shootdown_sweep(FAST, benchmark="gups", rates=(0.0, 10.0),
                                schemes=ALL_SCHEMES)
        scalar_params = dataclasses.replace(FAST, batch=False)
        scalar = shootdown_sweep(scalar_params, benchmark="gups",
                                 rates=(0.0, 10.0), schemes=ALL_SCHEMES)
        assert batch.render() == scalar.render()
        assert batch.to_json() == scalar.to_json()

    def test_storm_degrades_all_schemes(self):
        report = shootdown_sweep(FAST, benchmark="gups",
                                 rates=(0.0, 50.0),
                                 schemes=("baseline", "pom"))
        control, stormed = report.rows
        # Shootdown interference can only cost cycles.
        for column in (1, 2):
            assert stormed[column] <= control[column]


class TestCli:
    def test_lifecycle_churn_cli(self, capsys):
        code = main(["lifecycle", "churn", "--benchmarks", "gups",
                     "--generations", "2", "--refs", "150",
                     "--scale", "0.05", "--schemes", "pom", "--verify"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Lifecycle churn" in out
        assert "mem_final_bytes" in out

    def test_lifecycle_shootdown_cli(self, capsys):
        code = main(["lifecycle", "shootdown", "--rates", "0,10",
                     "--refs", "150", "--scale", "0.05", "--cores", "2",
                     "--schemes", "baseline,pom"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Shootdown interference" in out

    def test_lifecycle_rejects_unknown_scheme(self, capsys):
        code = main(["lifecycle", "churn", "--schemes", "warp"])
        assert code == 2

    def test_lifecycle_rejects_bad_rates(self, capsys):
        code = main(["lifecycle", "shootdown", "--rates", "fast"])
        assert code == 2

    def test_lifecycle_rejects_multi_benchmark_shootdown(self, capsys):
        code = main(["lifecycle", "shootdown",
                     "--benchmarks", "gups,mcf"])
        assert code == 2
