"""Unit tests for the experiment runner (tiny configurations)."""

import dataclasses

import pytest

from repro.experiments.runner import BenchmarkRun, ExperimentParams, SuiteRunner

TINY = ExperimentParams(num_cores=1, refs_per_core=400, scale=0.02, seed=3)


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(TINY)


class TestExperimentParams:
    def test_defaults_are_paper_config(self):
        params = ExperimentParams()
        assert params.num_cores == 8
        assert params.pom_size_bytes == 16 * 1024 * 1024
        assert params.virtualized

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("POMTLB_CORES", "2")
        monkeypatch.setenv("POMTLB_SCALE", "0.5")
        params = ExperimentParams.from_env()
        assert params.num_cores == 2
        assert params.scale == 0.5

    def test_from_env_overrides_win(self, monkeypatch):
        monkeypatch.setenv("POMTLB_CORES", "2")
        params = ExperimentParams.from_env(num_cores=4)
        assert params.num_cores == 4

    def test_system_config_reflects_params(self):
        params = ExperimentParams(pom_size_bytes=8 * 1024 * 1024,
                                  cache_tlb_entries=False, num_cores=4)
        cfg = params.system_config()
        assert cfg.pom_tlb.size_bytes == 8 * 1024 * 1024
        assert not cfg.cache_tlb_entries
        assert cfg.num_cores == 4

    def test_params_hashable(self):
        assert hash(ExperimentParams()) == hash(ExperimentParams())


class TestSuiteRunner:
    def test_run_returns_benchmark_run(self, runner):
        run = runner.run("gcc", "pom")
        assert isinstance(run, BenchmarkRun)
        assert run.benchmark == "gcc"
        assert run.scheme == "pom"
        assert run.result.references > 0

    def test_memoisation(self, runner):
        first = runner.run("gcc", "pom")
        second = runner.run("gcc", "pom")
        assert first is second

    def test_different_params_not_conflated(self, runner):
        base = runner.run("gcc", "pom")
        other_params = dataclasses.replace(TINY, cache_tlb_entries=False)
        other = runner.run("gcc", "pom", other_params)
        assert base is not other

    def test_improvement_is_finite(self, runner):
        run = runner.run("gcc", "pom")
        assert -100 < run.improvement_percent < 100

    def test_run_suite_subset(self, runner):
        runs = runner.run_suite("pom", benchmarks=["gcc", "canneal"])
        assert [r.benchmark for r in runs] == ["gcc", "canneal"]

    def test_unknown_benchmark_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run("quake", "pom")

    def test_unknown_scheme_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run("gcc", "quantum")
