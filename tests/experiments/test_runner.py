"""Unit tests for the experiment runner (tiny configurations)."""

import dataclasses

import pytest

from repro.common.errors import ConfigError, RunFailed
from repro.experiments.runner import (
    EXECUTION_FIELDS,
    BenchmarkRun,
    ExperimentParams,
    SuiteRunner,
)

TINY = ExperimentParams(num_cores=1, refs_per_core=400, scale=0.02, seed=3)


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(TINY)


class TestExperimentParams:
    def test_defaults_are_paper_config(self):
        params = ExperimentParams()
        assert params.num_cores == 8
        assert params.pom_size_bytes == 16 * 1024 * 1024
        assert params.virtualized

    def test_from_env(self, monkeypatch):
        monkeypatch.setenv("POMTLB_CORES", "2")
        monkeypatch.setenv("POMTLB_SCALE", "0.5")
        params = ExperimentParams.from_env()
        assert params.num_cores == 2
        assert params.scale == 0.5

    def test_from_env_overrides_win(self, monkeypatch):
        monkeypatch.setenv("POMTLB_CORES", "2")
        params = ExperimentParams.from_env(num_cores=4)
        assert params.num_cores == 4

    def test_system_config_reflects_params(self):
        params = ExperimentParams(pom_size_bytes=8 * 1024 * 1024,
                                  cache_tlb_entries=False, num_cores=4)
        cfg = params.system_config()
        assert cfg.pom_tlb.size_bytes == 8 * 1024 * 1024
        assert not cfg.cache_tlb_entries
        assert cfg.num_cores == 4

    def test_params_hashable(self):
        assert hash(ExperimentParams()) == hash(ExperimentParams())

    @pytest.mark.parametrize("variable", [
        "POMTLB_CORES", "POMTLB_REFS", "POMTLB_SEED", "POMTLB_WORKERS",
    ])
    def test_from_env_bad_int_names_variable(self, monkeypatch, variable):
        monkeypatch.setenv(variable, "lots")
        with pytest.raises(ConfigError) as excinfo:
            ExperimentParams.from_env()
        assert variable in str(excinfo.value)
        assert "lots" in str(excinfo.value)

    def test_from_env_bad_float_names_variable(self, monkeypatch):
        monkeypatch.setenv("POMTLB_SCALE", "half")
        with pytest.raises(ConfigError, match="POMTLB_SCALE"):
            ExperimentParams.from_env()

    def test_from_env_reads_workers(self, monkeypatch):
        monkeypatch.setenv("POMTLB_WORKERS", "4")
        assert ExperimentParams.from_env().workers == 4

    def test_checkpoint_fields_exclude_execution_knobs(self):
        fields = ExperimentParams().checkpoint_fields()
        for name in EXECUTION_FIELDS:
            assert name not in fields
        assert "seed" in fields and "scale" in fields


class TestSuiteRunner:
    def test_run_returns_benchmark_run(self, runner):
        run = runner.run("gcc", "pom")
        assert isinstance(run, BenchmarkRun)
        assert run.benchmark == "gcc"
        assert run.scheme == "pom"
        assert run.result.references > 0

    def test_memoisation(self, runner):
        first = runner.run("gcc", "pom")
        second = runner.run("gcc", "pom")
        assert first is second

    def test_different_params_not_conflated(self, runner):
        base = runner.run("gcc", "pom")
        other_params = dataclasses.replace(TINY, cache_tlb_entries=False)
        other = runner.run("gcc", "pom", other_params)
        assert base is not other

    def test_improvement_is_finite(self, runner):
        run = runner.run("gcc", "pom")
        assert -100 < run.improvement_percent < 100

    def test_run_suite_subset(self, runner):
        runs = runner.run_suite("pom", benchmarks=["gcc", "canneal"])
        assert [r.benchmark for r in runs] == ["gcc", "canneal"]

    def test_unknown_benchmark_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run("quake", "pom")

    def test_unknown_scheme_rejected(self, runner):
        with pytest.raises(ValueError):
            runner.run("gcc", "quantum")

    def test_simulations_counter_tracks_cache_misses(self):
        local = SuiteRunner(TINY)
        local.run("gcc", "pom")
        local.run("gcc", "pom")   # memoised; no new simulation
        assert local.simulations == 1

    def test_install_feeds_the_cache(self, runner):
        local = SuiteRunner(TINY)
        run = runner.run("gcc", "pom")
        local.install(run, TINY)
        assert local.run("gcc", "pom") is run
        assert local.simulations == 0

    def test_recorded_failure_raises_run_failed(self):
        local = SuiteRunner(TINY)

        class _Error:
            type = "WorkerCrash"
            message = "died"

        class _Failure:
            error = _Error()
            attempts = 3

        local.record_failure("gcc", "pom", _Failure())
        with pytest.raises(RunFailed, match="WorkerCrash"):
            local.run("gcc", "pom")
        # Other (benchmark, scheme) pairs are unaffected.
        assert local.run("gcc", "baseline").benchmark == "gcc"
