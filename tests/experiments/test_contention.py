"""Unit tests for the channel-contention study."""

from repro.experiments.contention import _make_stream, channel_contention


class TestMakeStream:
    def test_deterministic(self):
        a = _make_stream("t", 50, 10.0, 128, seed=4)
        b = _make_stream("t", 50, 10.0, 128, seed=4)
        assert [(r.paddr, r.arrival) for r in a] == \
            [(r.paddr, r.arrival) for r in b]

    def test_arrivals_monotone(self):
        stream = _make_stream("t", 100, 5.0, 128, seed=4)
        arrivals = [r.arrival for r in stream]
        assert arrivals == sorted(arrivals)

    def test_locality_keeps_rows(self):
        sticky = _make_stream("t", 300, 5.0, 4096, seed=4, locality=0.9)
        scattered = _make_stream("t", 300, 5.0, 4096, seed=4, locality=0.0)
        def row_changes(stream):
            rows = [r.paddr // 2048 for r in stream]
            return sum(1 for a, b in zip(rows, rows[1:]) if a != b)
        assert row_changes(sticky) < row_changes(scattered)

    def test_tag_applied(self):
        assert all(r.tag == "x" for r in _make_stream("x", 10, 5.0, 8, 1))


class TestChannelContention:
    def test_report_structure(self):
        report = channel_contention(data_intervals=(64, 32),
                                    requests_per_stream=200)
        assert len(report.rows) == 2
        assert report.headers == ("data_interval", "shared_channel",
                                  "dedicated_channel", "slowdown")

    def test_dedicated_is_load_independent(self):
        report = channel_contention(data_intervals=(64, 32),
                                    requests_per_stream=200)
        dedicated = report.column("dedicated_channel")
        assert dedicated[0] == dedicated[1]

    def test_shared_slower_under_heavy_load(self):
        report = channel_contention(data_intervals=(128, 16),
                                    requests_per_stream=400)
        slowdown = report.column("slowdown")
        assert slowdown[-1] > slowdown[0] >= 0.9
