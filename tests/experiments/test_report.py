"""Unit tests for the report renderer."""

import pytest

from repro.experiments.report import Report


def make_report():
    r = Report(title="T", headers=("name", "value"))
    r.add_row("a", 1)
    r.add_row("b", 2.5)
    return r


class TestReport:
    def test_add_row_validates_width(self):
        r = make_report()
        with pytest.raises(ValueError):
            r.add_row("only-one")

    def test_column(self):
        r = make_report()
        assert r.column("name") == ["a", "b"]
        assert r.column("value") == [1, 2.5]

    def test_column_unknown_header(self):
        with pytest.raises(ValueError):
            make_report().column("ghost")

    def test_row_lookup(self):
        r = make_report()
        assert r.row("b") == ("b", 2.5)

    def test_row_missing(self):
        with pytest.raises(KeyError):
            make_report().row("zz")

    def test_render_contains_everything(self):
        r = make_report()
        r.add_note("hello")
        text = r.render()
        assert "T" in text
        assert "name" in text and "value" in text
        assert "2.50" in text  # floats get two decimals
        assert "note: hello" in text

    def test_render_alignment(self):
        r = Report(title="T", headers=("x",))
        r.add_row("longvalue")
        lines = r.render().splitlines()
        header_line = lines[2]
        assert header_line.startswith("x")

    def test_str_is_render(self):
        r = make_report()
        assert str(r) == r.render()


class TestRenderBars:
    def test_bars_scale_to_peak(self):
        r = Report(title="B", headers=("name", "value"))
        r.add_row("big", 10.0)
        r.add_row("half", 5.0)
        text = r.render_bars("value", width=10)
        lines = text.splitlines()
        assert lines[2].count("#") == 10
        assert lines[3].count("#") == 5

    def test_negative_values_use_minus_glyph(self):
        r = Report(title="B", headers=("name", "value"))
        r.add_row("bad", -4.0)
        r.add_row("good", 4.0)
        text = r.render_bars("value")
        assert "-" * 10 in text.splitlines()[2]

    def test_empty_report(self):
        r = Report(title="B", headers=("name", "value"))
        assert r.render_bars("value") == "B"


class TestJsonRoundtrip:
    def test_roundtrip_preserves_everything(self):
        r = make_report()
        r.add_note("hello")
        clone = Report.from_json(r.to_json())
        assert clone.title == r.title
        assert tuple(clone.headers) == tuple(r.headers)
        assert [list(row) for row in clone.rows] == \
            [list(row) for row in r.rows]
        assert clone.notes == r.notes

    def test_json_is_parseable(self):
        import json
        payload = json.loads(make_report().to_json())
        assert payload["headers"] == ["name", "value"]
