"""Unit tests for the ``pomtlb profile`` experiment driver."""

from repro.experiments.profiling import profile_benchmark
from repro.experiments.runner import ExperimentParams

_PARAMS = ExperimentParams(num_cores=1, refs_per_core=300, scale=0.02, seed=2)


class TestProfileBenchmark:
    def test_report_shape(self):
        report = profile_benchmark(_PARAMS, "gups")
        assert report.headers == ("component", "calls", "total_s", "self_s",
                                  "self_pct")
        components = [row[0] for row in report.rows]
        assert "mmu.translate" in components
        assert "cache.data_access" in components
        assert "dram.stacked" in components      # pom scheme has stacked DRAM
        assert any("wall-clock" in note for note in report.notes)

    def test_baseline_scheme_has_no_stacked_dram(self):
        report = profile_benchmark(_PARAMS, "gups", scheme="baseline")
        components = [row[0] for row in report.rows]
        assert "mmu.translate" in components
        assert "dram.stacked" not in components

    def test_self_pct_sums_to_100(self):
        report = profile_benchmark(_PARAMS, "gups")
        total = sum(row[4] for row in report.rows)
        assert abs(total - 100.0) < 1e-6
