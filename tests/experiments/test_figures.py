"""Unit tests for the figure drivers (tiny configurations)."""

import pytest

from repro.experiments import figures, tables
from repro.experiments.runner import ExperimentParams, SuiteRunner

TINY = ExperimentParams(num_cores=1, refs_per_core=400, scale=0.02, seed=3)
SUBSET = ["gcc", "canneal"]


@pytest.fixture(scope="module")
def runner():
    return SuiteRunner(TINY)


class TestStaticReports:
    def test_table1(self):
        report = tables.table1()
        text = report.render()
        assert "4 GHz" in text
        assert "16MiB" in text  # POM-TLB capacity

    def test_table2_has_all_benchmarks(self):
        report = tables.table2()
        assert len(report.rows) == 15
        assert report.row("mcf")[4] == 169  # cycles per miss, virtualized

    def test_fig1(self):
        report = figures.fig1_walk_steps()
        assert report.row("worst-case references")[1] == 24
        cold = report.row("cold-walk references (this system)")[1]
        assert 4 < cold <= 24

    def test_fig4_monotone(self):
        report = figures.fig4_sram_latency()
        series = report.column("normalised_latency")
        assert series == sorted(series)
        assert series[0] == pytest.approx(1.0)


class TestSimulatedFigures:
    def test_fig8_structure(self, runner):
        report = figures.fig8_performance(runner, SUBSET)
        assert report.headers == ("benchmark", "pom", "shared_l2", "tsb")
        assert [row[0] for row in report.rows] == SUBSET + ["geomean"]

    def test_fig9_ratios_in_range(self, runner):
        report = figures.fig9_hit_ratio(runner, SUBSET)
        for row in report.rows:
            for value in row[1:]:
                assert 0.0 <= value <= 1.0

    def test_fig10_accuracies_in_range(self, runner):
        report = figures.fig10_predictors(runner, SUBSET)
        for row in report.rows:
            assert 0.0 <= row[1] <= 1.0
            assert 0.0 <= row[2] <= 1.0

    def test_fig11_rates_in_range(self, runner):
        report = figures.fig11_row_buffer(runner, SUBSET)
        for row in report.rows:
            assert 0.0 <= row[1] <= 1.0

    def test_fig2_columns(self, runner):
        report = figures.fig2_translation_cycles(runner, SUBSET)
        assert report.row("gcc")[1] == 88  # paper value carried through
        # At this tiny scale the footprint can fit the L2 TLB entirely
        # (zero steady-state misses), so only non-negativity is stable.
        assert report.row("gcc")[2] >= 0

    def test_fig3_ratios_positive(self, runner):
        report = figures.fig3_virt_native_ratio(runner, SUBSET)
        for row in report.rows:
            assert row[1] > 0
            assert row[2] >= 0

    def test_fig12_has_both_columns(self, runner):
        report = figures.fig12_caching_ablation(runner, ["gcc"])
        assert report.headers == ("benchmark", "with_caching",
                                  "without_caching")
        assert [row[0] for row in report.rows] == ["gcc", "geomean"]

    def test_sensitivity_capacity(self, runner):
        report = figures.sensitivity_capacity(runner, ["gcc"],
                                              capacities_mb=(8, 16))
        assert [row[0] for row in report.rows] == ["8MiB", "16MiB"]

    def test_sensitivity_cores(self, runner):
        report = figures.sensitivity_cores(runner, ["gcc"],
                                           core_counts=(1, 2))
        assert [row[0] for row in report.rows] == [1, 2]
