"""Unit tests for the native (1-D) page walker."""

import itertools

from repro.common import addr
from repro.common.config import WalkCacheConfig
from repro.common.stats import StatGroup
from repro.paging.page_table import RadixPageTable
from repro.paging.walk_cache import PagingStructureCache
from repro.paging.walker import NativeWalker


class CountingMemory:
    """PTE access stub: fixed cost, records every address."""

    def __init__(self, cost=10):
        self.cost = cost
        self.addresses = []

    def __call__(self, paddr):
        self.addresses.append(paddr)
        return self.cost


def make_walker(cost=10):
    counter = itertools.count()
    pt = RadixPageTable(lambda: 0x100000 + next(counter) * 4096, name="t")
    psc = PagingStructureCache(WalkCacheConfig(), StatGroup("psc"))
    mem = CountingMemory(cost)
    walker = NativeWalker(pt, psc, mem, StatGroup("walker"))
    return walker, pt, psc, mem


class TestColdWalk:
    def test_cold_small_walk_is_four_refs(self):
        walker, pt, _, mem = make_walker()
        pt.map_page(0x1000, 0x200000)
        outcome = walker.walk(0x1234)
        assert outcome.memory_refs == 4
        assert len(mem.addresses) == 4
        assert outcome.translate(0x1234) == 0x200234

    def test_cold_large_walk_is_three_refs(self):
        walker, pt, _, _ = make_walker()
        pt.map_page(0x0, 0x400000, large=True)
        outcome = walker.walk(0x1234)
        assert outcome.memory_refs == 3
        assert outcome.leaf.large

    def test_cycles_include_psc_probe_and_refs(self):
        walker, pt, _, _ = make_walker(cost=10)
        pt.map_page(0x1000, 0x200000)
        outcome = walker.walk(0x1234)
        assert outcome.cycles == 2 + 4 * 10  # PSC probe + 4 PTE accesses


class TestPscAcceleration:
    def test_warm_walk_is_one_ref(self):
        walker, pt, _, _ = make_walker()
        pt.map_page(0x1000, 0x200000)
        walker.walk(0x1000)
        outcome = walker.walk(0x1000)
        assert outcome.memory_refs == 1  # PDE$ hit: only the PT access

    def test_neighbouring_page_reuses_pde_entry(self):
        walker, pt, _, _ = make_walker()
        pt.map_page(0x1000, 0x200000)
        pt.map_page(0x2000, 0x201000)
        walker.walk(0x1000)
        assert walker.walk(0x2000).memory_refs == 1

    def test_large_page_warm_walk_is_one_ref(self):
        walker, pt, _, _ = make_walker()
        pt.map_page(0x0, 0x400000, large=True)
        walker.walk(0x0)
        outcome = walker.walk(0x1000)
        assert outcome.memory_refs == 1  # PDP$ hit -> PD access only

    def test_stale_psc_falls_back_to_full_walk(self):
        walker, pt, _, _ = make_walker()
        pt.map_page(0x1000, 0x200000)
        walker.walk(0x1000)
        # Remap the page so PT pages change beneath the PSC.
        pt.unmap_page(0x1000)
        pt.map_page(0x1000, 0x300000)
        outcome = walker.walk(0x1000)
        assert outcome.translate(0x1000) == 0x300000


class TestStats:
    def test_walk_counters(self):
        walker, pt, _, _ = make_walker()
        pt.map_page(0x1000, 0x200000)
        walker.walk(0x1000)
        walker.walk(0x1000)
        assert walker.stats["walks"] == 2
        assert walker.stats["walk_refs"] == 5  # 4 cold + 1 warm
