"""Unit tests for the radix page table."""

import itertools

import pytest

from repro.common import addr
from repro.common.errors import AddressError, TranslationFault
from repro.paging.page_table import PTE_BYTES, RadixPageTable


def bump_allocator(start=0x100000):
    counter = itertools.count()
    return lambda: start + next(counter) * addr.SMALL_PAGE_SIZE


def make_table():
    return RadixPageTable(bump_allocator(), name="t")


class TestMapping:
    def test_small_page_walk_has_four_steps(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        steps, leaf = pt.walk(0x1234)
        assert [s.level for s in steps] == [4, 3, 2, 1]
        assert leaf.frame == 0x200000 and not leaf.large

    def test_large_page_walk_has_three_steps(self):
        pt = make_table()
        pt.map_page(0x0, 0x400000, large=True)
        steps, leaf = pt.walk(0x123456)
        assert [s.level for s in steps] == [4, 3, 2]
        assert leaf.large

    def test_translate(self):
        pt = make_table()
        pt.map_page(0x5000, 0x200000)
        _, leaf = pt.walk(0x5123)
        assert leaf.translate(0x5123) == 0x200123

    def test_unmapped_raises_fault(self):
        pt = make_table()
        with pytest.raises(TranslationFault):
            pt.walk(0x1000)

    def test_misaligned_frame_rejected(self):
        pt = make_table()
        with pytest.raises(AddressError):
            pt.map_page(0x1000, 0x200100)
        with pytest.raises(AddressError):
            pt.map_page(0x0, 0x1000, large=True)  # not 2MiB aligned

    def test_small_under_large_conflict_rejected(self):
        pt = make_table()
        pt.map_page(0x0, 0x400000, large=True)
        with pytest.raises(AddressError):
            pt.map_page(0x1000, 0x200000)  # same 2MiB region

    def test_large_over_small_conflict_rejected(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        with pytest.raises(AddressError):
            pt.map_page(0x0, 0x400000, large=True)

    def test_remap_replaces_leaf(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        pt.map_page(0x1000, 0x300000)
        assert pt.lookup(0x1000).frame == 0x300000
        assert pt.mapped_pages == (1, 0)


class TestWalkAddresses:
    def test_pte_addresses_use_table_base_plus_index(self):
        pt = make_table()
        va = (3 << 39) | (5 << 30) | (7 << 21) | (9 << 12)
        pt.map_page(va, 0x200000)
        steps, _ = pt.walk(va)
        assert steps[0].pte_paddr == pt.root_base + PTE_BYTES * 3
        for step, index in zip(steps[1:], (5, 7, 9)):
            base = pt.table_base(va, step.level)
            assert step.pte_paddr == base + PTE_BYTES * index

    def test_sibling_pages_share_tables(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        tables_before = pt.table_count()
        pt.map_page(0x2000, 0x201000)  # same PT
        assert pt.table_count() == tables_before

    def test_distant_pages_allocate_new_tables(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        before = pt.table_count()
        pt.map_page(1 << 40, 0x201000)
        assert pt.table_count() > before


class TestWalkFrom:
    def test_walk_from_cached_level(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        base = pt.table_base(0x1000, 1)
        steps, leaf = pt.walk_from(0x1000, 1, base)
        assert len(steps) == 1 and steps[0].level == 1
        assert leaf.frame == 0x200000

    def test_walk_from_detects_stale_base(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        with pytest.raises(AddressError):
            pt.walk_from(0x1000, 1, 0xDEAD000)

    def test_walk_from_unmapped_subtree_faults(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        with pytest.raises(TranslationFault):
            pt.walk_from(1 << 40, 1, pt.root_base)


class TestUnmap:
    def test_unmap_small(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        assert pt.unmap_page(0x1000)
        assert pt.lookup(0x1000) is None
        assert pt.mapped_pages == (0, 0)

    def test_unmap_large(self):
        pt = make_table()
        pt.map_page(0x0, 0x400000, large=True)
        assert pt.unmap_page(0x0, large=True)
        assert pt.mapped_pages == (0, 0)

    def test_unmap_missing_returns_false(self):
        pt = make_table()
        assert not pt.unmap_page(0x1000)


class TestLookup:
    def test_lookup_small_and_large(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        pt.map_page(1 << 30, 0x400000, large=True)
        assert not pt.lookup(0x1000).large
        assert pt.lookup((1 << 30) + 12345).large

    def test_lookup_unmapped_is_none(self):
        pt = make_table()
        assert pt.lookup(0x1000) is None

    def test_mapped_pages_counts(self):
        pt = make_table()
        pt.map_page(0x1000, 0x200000)
        pt.map_page(1 << 30, 0x400000, large=True)
        assert pt.mapped_pages == (1, 1)
