"""Unit tests for the paging-structure caches."""

import pytest

from repro.common import addr
from repro.common.config import WalkCacheConfig
from repro.common.stats import StatGroup
from repro.paging.walk_cache import PagingStructureCache


def make_psc(**overrides):
    return PagingStructureCache(WalkCacheConfig(**overrides), StatGroup("psc"))


class TestLookup:
    def test_cold_lookup_starts_at_root(self):
        psc = make_psc()
        start, base, cycles = psc.lookup(0x1000)
        assert start == 4 and base is None
        assert cycles == 2
        assert psc.stats["misses"] == 1

    def test_pde_hit_starts_at_level_1(self):
        psc = make_psc()
        psc.fill(0x1000, 1, 0xAAAA000)
        start, base, _ = psc.lookup(0x1FFF)  # same 2MiB prefix
        assert (start, base) == (1, 0xAAAA000)
        assert psc.stats["pde_hits"] == 1

    def test_deeper_cache_wins(self):
        psc = make_psc()
        psc.fill(0x1000, 3, 0xCCCC000)
        psc.fill(0x1000, 1, 0xAAAA000)
        start, base, _ = psc.lookup(0x1000)
        assert start == 1 and base == 0xAAAA000

    def test_pdp_hit_starts_at_level_2(self):
        psc = make_psc()
        psc.fill(0x1000, 2, 0xBBBB000)
        start, base, _ = psc.lookup(0x1000 + addr.LARGE_PAGE_SIZE)  # same 1GiB
        assert (start, base) == (2, 0xBBBB000)

    def test_prefix_mismatch_misses(self):
        psc = make_psc()
        psc.fill(0x1000, 1, 0xAAAA000)
        start, base, _ = psc.lookup(0x1000 + addr.LARGE_PAGE_SIZE)
        assert start == 4 and base is None


class TestCapacityAndLru:
    def test_pml4_capacity_is_two(self):
        psc = make_psc()
        for i in range(3):
            psc.fill(i << 39, 3, 0x1000 * (i + 1))
        assert psc.sizes()["pml4"] == 2
        # Oldest (i=0) evicted.
        start, base, _ = psc.lookup(0)
        assert base is None

    def test_lru_refresh_on_hit(self):
        psc = make_psc()
        psc.fill(0 << 39, 3, 0x1000)
        psc.fill(1 << 39, 3, 0x2000)
        psc.lookup(0)              # refresh entry 0
        psc.fill(2 << 39, 3, 0x3000)  # evicts entry 1
        assert psc.lookup(0)[1] == 0x1000
        assert psc.lookup(1 << 39)[1] is None

    def test_zero_capacity_never_fills(self):
        psc = make_psc(pml4_entries=0)
        psc.fill(0, 3, 0x1000)
        assert psc.sizes()["pml4"] == 0


class TestFillValidation:
    def test_fill_rejects_root_level(self):
        psc = make_psc()
        with pytest.raises(ValueError):
            psc.fill(0, 4, 0x1000)

    def test_refill_same_prefix_updates(self):
        psc = make_psc()
        psc.fill(0x1000, 1, 0xAAAA000)
        psc.fill(0x1000, 1, 0xBBBB000)
        assert psc.lookup(0x1000)[1] == 0xBBBB000
        assert psc.sizes()["pde"] == 1


class TestInvalidate:
    def test_invalidate_drops_all_levels(self):
        psc = make_psc()
        psc.fill(0x1000, 1, 0xA000)
        psc.fill(0x1000, 2, 0xB000)
        psc.fill(0x1000, 3, 0xC000)
        psc.invalidate(0x1000)
        assert psc.lookup(0x1000)[1] is None

    def test_flush(self):
        psc = make_psc()
        psc.fill(0x1000, 1, 0xA000)
        psc.flush()
        assert psc.sizes() == {"pde": 0, "pdp": 0, "pml4": 0}
