"""Unit tests for the 2-D nested walker (paper Figure 1)."""

from repro.common import addr
from repro.common.config import WalkCacheConfig
from repro.common.stats import StatGroup
from repro.paging.nested import MAX_NESTED_REFS, NestedWalker
from repro.paging.walk_cache import PagingStructureCache
from repro.vmm.memory_manager import PhysicalMemory
from repro.vmm.thp import ThpPolicy
from repro.vmm.vm import VirtualMachine


class CountingMemory:
    def __init__(self, cost=10):
        self.cost = cost
        self.addresses = []

    def __call__(self, paddr):
        self.addresses.append(paddr)
        return self.cost


def make_setup(large_fraction=0.0):
    host = PhysicalMemory(base=0, size_bytes=4 * addr.GiB)
    vm = VirtualMachine(0, host, ThpPolicy(large_fraction, seed=1))
    mem = CountingMemory()
    walker = NestedWalker(
        guest_table=vm.process(1).guest_table,
        host_table=vm.host_table,
        guest_psc=PagingStructureCache(WalkCacheConfig(), StatGroup("gpsc")),
        host_psc=PagingStructureCache(WalkCacheConfig(), StatGroup("hpsc")),
        pte_access=mem,
        stats=StatGroup("nested"),
    )
    return vm, walker, mem


class TestColdNestedWalk:
    def test_cold_walk_ref_count_bounded_by_24(self):
        vm, walker, mem = make_setup()
        vm.touch(1, 0x1000)
        walker.guest_psc.flush()
        walker.host_psc.flush()
        mem.addresses.clear()
        outcome = walker.walk(0x1234)
        assert outcome.memory_refs <= MAX_NESTED_REFS
        # Even with the host PSC warming *within* the walk, a cold 2-D
        # walk costs far more than a native 4-ref walk.
        assert outcome.memory_refs >= 10
        assert len(mem.addresses) == outcome.memory_refs

    def test_first_walk_translates_correctly(self):
        vm, walker, _ = make_setup()
        page = vm.touch(1, 0x1000)
        outcome = walker.walk(0x1234)
        assert outcome.host_frame == page.host_frame
        assert outcome.translate(0x1234) == page.host_frame | 0x234

    def test_pte_addresses_are_host_physical(self):
        vm, walker, mem = make_setup()
        vm.touch(1, 0x1000)
        mem.addresses.clear()
        walker.walk(0x1000)
        limit = vm.host_memory.base + vm.host_memory.size_bytes
        assert all(vm.host_memory.base <= a < limit for a in mem.addresses)


class TestWarmNestedWalk:
    def test_warm_walk_is_much_cheaper(self):
        vm, walker, _ = make_setup()
        vm.touch(1, 0x1000)
        cold = walker.walk(0x1000)
        warm = walker.walk(0x1000)
        assert warm.memory_refs < cold.memory_refs
        # Combined guest PSC hit: 1 guest PTE + short host walk of data gPA.
        assert warm.memory_refs <= 3

    def test_neighbour_page_benefits_from_pscs(self):
        vm, walker, _ = make_setup()
        vm.touch(1, 0x1000)
        vm.touch(1, 0x2000)
        walker.walk(0x1000)
        assert walker.walk(0x2000).memory_refs <= 3


class TestLargePages:
    def test_large_guest_page_walk(self):
        vm, walker, _ = make_setup(large_fraction=1.0)
        page = vm.touch(1, 0x1000)
        assert page.large
        outcome = walker.walk(0x1234)
        assert outcome.large
        assert outcome.translate(0x1234) == page.host_frame | 0x1234

    def test_large_page_cold_walk_has_fewer_refs(self):
        vm_small, walker_small, _ = make_setup(large_fraction=0.0)
        vm_large, walker_large, _ = make_setup(large_fraction=1.0)
        vm_small.touch(1, 0x1000)
        vm_large.touch(1, 0x1000)
        cold_small = walker_small.walk(0x1000).memory_refs
        cold_large = walker_large.walk(0x1000).memory_refs
        assert cold_large < cold_small


class TestStats:
    def test_nested_counters(self):
        vm, walker, _ = make_setup()
        vm.touch(1, 0x1000)
        walker.walk(0x1000)
        assert walker.stats["nested_walks"] == 1
        assert walker.stats["nested_refs"] > 0
        assert walker.stats["nested_cycles"] > 0
