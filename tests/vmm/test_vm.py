"""Unit tests for VMs, guest processes and demand paging."""

import pytest

from repro.common import addr
from repro.vmm.memory_manager import PhysicalMemory
from repro.vmm.thp import ThpPolicy
from repro.vmm.vm import Host, NativeProcess, VirtualMachine


def make_vm(large_fraction=0.0):
    host = PhysicalMemory(base=0, size_bytes=8 * addr.GiB)
    return VirtualMachine(0, host, ThpPolicy(large_fraction, seed=1))


class TestDemandPaging:
    def test_touch_maps_both_dimensions(self):
        vm = make_vm()
        page = vm.touch(1, 0x1000)
        proc = vm.process(1)
        # Guest table maps gVA -> gPA.
        assert proc.guest_table.lookup(0x1000).frame == page.guest_frame
        # Host table maps gPA -> hPA.
        assert vm.host_table.lookup(page.guest_frame).frame == page.host_frame

    def test_touch_is_idempotent(self):
        vm = make_vm()
        first = vm.touch(1, 0x1000)
        second = vm.touch(1, 0x1000)
        assert first == second
        assert len(vm.process(1).small_pages) == 1

    def test_same_page_different_offsets(self):
        vm = make_vm()
        a = vm.touch(1, 0x1000)
        b = vm.touch(1, 0x1FFF)
        assert a == b

    def test_resolve_untouched_is_none(self):
        vm = make_vm()
        assert vm.resolve(1, 0x1000) is None
        vm.touch(1, 0x1000)
        assert vm.resolve(1, 0x1000) is not None

    def test_resolve_unknown_process_is_none(self):
        vm = make_vm()
        assert vm.resolve(99, 0x1000) is None

    def test_large_page_covers_2mib(self):
        vm = make_vm(large_fraction=1.0)
        page = vm.touch(1, 0x1000)
        assert page.large
        assert vm.resolve(1, 0x1FFFFF) == page
        assert vm.resolve(1, addr.LARGE_PAGE_SIZE) != page or \
            vm.resolve(1, addr.LARGE_PAGE_SIZE) is None

    def test_guest_table_frames_are_host_mapped(self):
        vm = make_vm()
        vm.touch(1, 0x1000)
        root_gpa = vm.process(1).guest_table.root_base
        assert vm.host_table.lookup(root_gpa) is not None

    def test_processes_are_isolated(self):
        vm = make_vm()
        a = vm.touch(1, 0x1000)
        b = vm.touch(2, 0x1000)
        assert a.host_frame != b.host_frame

    def test_footprint(self):
        vm = make_vm()
        vm.touch(1, 0x1000)
        vm.touch(1, 0x5000)
        assert vm.process(1).footprint_bytes == 2 * addr.SMALL_PAGE_SIZE


class TestUnmap:
    def test_unmap_removes_mapping(self):
        vm = make_vm()
        page = vm.touch(1, 0x1000)
        assert vm.unmap(1, 0x1000) == page
        assert vm.resolve(1, 0x1000) is None
        assert vm.process(1).guest_table.lookup(0x1000) is None

    def test_unmap_untouched_returns_none(self):
        vm = make_vm()
        assert vm.unmap(1, 0x1000) is None

    def test_retouch_after_unmap_reuses_reclaimed_frame(self):
        # unmap releases both frames; the LIFO free list hands them
        # straight back on the retouch, so memory does not grow.
        vm = make_vm()
        old = vm.touch(1, 0x1000)
        host_bytes = vm.host_memory.bytes_allocated
        vm.unmap(1, 0x1000)
        assert vm.host_memory.bytes_allocated < host_bytes
        new = vm.touch(1, 0x1000)
        assert new.host_frame == old.host_frame
        assert new.guest_frame == old.guest_frame
        assert vm.host_memory.bytes_allocated == host_bytes


class TestNativeProcess:
    def test_touch_maps_directly_to_host(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        proc = NativeProcess(1, mem, ThpPolicy(0.0))
        page = proc.touch(0x1000)
        assert page.guest_frame == page.host_frame
        assert proc.page_table.lookup(0x1000).frame == page.host_frame

    def test_large_pages(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        proc = NativeProcess(1, mem, ThpPolicy(1.0))
        page = proc.touch(0x1000)
        assert page.large
        assert proc.resolve(addr.LARGE_PAGE_SIZE - 1) == page


class TestHost:
    def test_create_vm(self):
        host = Host(memory_bytes=8 * addr.GiB)
        vm = host.create_vm(1, ThpPolicy(0.0))
        assert host.vms[1] is vm

    def test_duplicate_vm_id_rejected(self):
        host = Host(memory_bytes=8 * addr.GiB)
        host.create_vm(1, ThpPolicy(0.0))
        with pytest.raises(ValueError):
            host.create_vm(1, ThpPolicy(0.0))

    def test_vms_share_host_memory(self):
        host = Host(memory_bytes=8 * addr.GiB)
        a = host.create_vm(1, ThpPolicy(0.0))
        b = host.create_vm(2, ThpPolicy(0.0))
        pa = a.touch(1, 0x1000)
        pb = b.touch(1, 0x1000)
        assert pa.host_frame != pb.host_frame
