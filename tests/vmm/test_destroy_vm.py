"""VM teardown: Host.destroy_vm, Machine.destroy_vm, frame reclamation.

The reclaim path this locks in: destroy_vm must (1) release every frame
the guest owned — data pages, EPT table frames, guest page-table frames
— back to the host free lists, (2) purge the VM from every translation
structure (private TLBs, scheme backend, walkers/PSCs, cached backing
lines), and (3) keep the allocator's conservation laws intact, so a
boot/teardown loop holds ``bytes_allocated`` bounded instead of
exhausting physical memory.
"""

import pytest

from repro.common import addr
from repro.common.config import SystemConfig
from repro.core.mmu import _key_for
from repro.core.system import Machine
from repro.verify import Verifier
from repro.vmm.thp import ThpPolicy
from repro.vmm.vm import Host

SCHEMES = ["baseline", "pom", "pom_skewed", "shared_l2", "tsb"]


def boot_and_touch(machine, vm_id, pages=24, asid=1, core=0):
    """Boot ``vm_id`` (first touch) and pull ``pages`` through the MMU."""
    for i in range(pages):
        va = 0x40000 + i * addr.SMALL_PAGE_SIZE
        page = machine.touch(vm_id, asid, va)
        machine.scheme.translate(core, vm_id, asid, va, page)


class TestHostDestroyVm:
    def test_destroy_releases_every_frame(self):
        host = Host(memory_bytes=8 * addr.GiB)
        vm = host.create_vm(1, ThpPolicy(0.5))
        for i in range(32):
            vm.touch(1, 0x100000 + i * addr.SMALL_PAGE_SIZE)
        assert host.memory.bytes_allocated > 0
        freed = host.destroy_vm(1)
        assert 1 not in host.vms
        assert host.memory.bytes_allocated == 0
        assert freed.bytes > 0
        assert freed.small > 0

    def test_destroy_counts_both_sizes(self):
        host = Host(memory_bytes=8 * addr.GiB)
        vm = host.create_vm(1, ThpPolicy(1.0))
        vm.touch(1, 0x40000000)  # large data page
        freed = host.destroy_vm(1)
        assert freed.large == 1
        assert freed.small > 0  # table frames are 4KiB
        assert freed.bytes == (freed.small * addr.SMALL_PAGE_SIZE
                               + freed.large * addr.LARGE_PAGE_SIZE)

    def test_destroy_unknown_vm_raises(self):
        host = Host(memory_bytes=8 * addr.GiB)
        with pytest.raises(KeyError, match="does not exist"):
            host.destroy_vm(7)

    def test_boot_teardown_loop_holds_memory_bounded(self):
        host = Host(memory_bytes=8 * addr.GiB)
        footprints = []
        for generation in range(25):
            vm = host.create_vm(1, ThpPolicy(0.5))
            for i in range(16):
                vm.touch(1, 0x100000 + i * addr.SMALL_PAGE_SIZE)
            footprints.append(host.memory.bytes_allocated)
            host.destroy_vm(1)
            assert host.memory.bytes_allocated == 0
        # Identical boots allocate identical footprints: bounded, and
        # LIFO reuse means the bump pointer never advanced after gen 1.
        assert len(set(footprints)) == 1
        assert host.memory.peak_bytes == footprints[0]

    def test_freed_frames_reused_before_fresh(self):
        host = Host(memory_bytes=8 * addr.GiB)
        vm = host.create_vm(1, ThpPolicy(0.0))
        vm.touch(1, 0x100000)
        first_frames = {hpa for hpa, _large in vm.host_frames()}
        host.destroy_vm(1)
        vm2 = host.create_vm(2, ThpPolicy(0.0))
        vm2.touch(1, 0x100000)
        second_frames = {hpa for hpa, _large in vm2.host_frames()}
        assert second_frames == first_frames


class TestMachineDestroyVm:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_destroyed_vm_absent_everywhere(self, scheme):
        """No TLB, PSC/walker, backend or cache survives the teardown.

        The verifier is armed, so the stale-line and memory-conservation
        invariants check the backend lines and allocator balance; the
        assertions below check the private structures explicitly.
        """
        machine = Machine(SystemConfig(num_cores=2), scheme=scheme,
                          seed=3, verify=Verifier())
        boot_and_touch(machine, vm_id=1)
        boot_and_touch(machine, vm_id=2, core=1)
        machine.destroy_vm(1)
        assert 1 not in machine.host.vms
        for tlbs in machine.scheme.cores:
            for tlb in (tlbs.l1_small, tlbs.l1_large, tlbs.l2):
                assert all(k.vm_id != 1 for k in tlb.keys())
        assert all(key[1] != 1 for key in machine.walkers._walkers)

    def test_destroy_reclaims_machine_memory(self):
        machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                          seed=3, verify=Verifier())
        boot_and_touch(machine, vm_id=1)
        before = machine.host.memory.bytes_allocated
        assert before > 0
        freed = machine.destroy_vm(1)
        assert machine.host.memory.bytes_allocated == before - freed.bytes
        assert machine.host.memory.bytes_allocated == 0

    def test_survivor_vm_unaffected(self):
        machine = Machine(SystemConfig(num_cores=2), scheme="pom", seed=3)
        boot_and_touch(machine, vm_id=1)
        boot_and_touch(machine, vm_id=2, core=1)
        survivor_page = machine.host.vms[2].resolve(1, 0x40000)
        machine.destroy_vm(1)
        assert machine.host.vms[2].resolve(1, 0x40000) == survivor_page
        key = _key_for(2, 1, 0x40000, survivor_page.large)
        resident = any(tlbs.l2.contains(key)
                       for tlbs in machine.scheme.cores)
        assert resident, "survivor VM's translations must stay"

    def test_destroy_in_native_mode_rejected(self):
        machine = Machine(SystemConfig(num_cores=1, virtualized=False),
                          scheme="pom")
        with pytest.raises(ValueError, match="virtualized"):
            machine.destroy_vm(0)

    def test_destroy_unknown_vm_raises(self):
        machine = Machine(SystemConfig(num_cores=1), scheme="pom")
        with pytest.raises(KeyError):
            machine.destroy_vm(9)

    def test_rebooted_vm_id_starts_cold(self):
        machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                          seed=3, verify=Verifier())
        boot_and_touch(machine, vm_id=1, pages=4)
        machine.destroy_vm(1)
        # Same vm_id re-boots lazily on the next touch (migration
        # arrival); it must re-fault, not inherit the dead VM's pages.
        page = machine.touch(1, 1, 0x40000)
        assert page is not None
        assert len(machine.host.vms[1].processes[1].small_pages) == 1

    def test_boot_teardown_churn_bounded_with_verifier(self):
        machine = Machine(SystemConfig(num_cores=1), scheme="pom",
                          seed=3, verify=Verifier())
        samples = []
        for generation in range(25):
            boot_and_touch(machine, vm_id=1, pages=12)
            machine.destroy_vm(1)
            samples.append(machine.host.memory.bytes_allocated)
        assert samples == [0] * 25
        assert (machine.host.memory.peak_bytes
                < machine.host.memory.size_bytes)
