"""Unit tests for physical frame allocation."""

import pytest

from repro.common import addr
from repro.common.errors import AddressError
from repro.vmm.memory_manager import PhysicalMemory


class TestAllocation:
    def test_small_frames_are_sequential_and_aligned(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frames = [mem.alloc_frame() for _ in range(4)]
        assert frames == [0, 4096, 8192, 12288]

    def test_large_frames_are_2mib_aligned(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frame = mem.alloc_frame(large=True)
        assert frame % addr.LARGE_PAGE_SIZE == 0

    def test_small_and_large_regions_disjoint(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        smalls = {mem.alloc_frame() for _ in range(100)}
        larges = set()
        for _ in range(10):
            base = mem.alloc_frame(large=True)
            larges.update(range(base, base + addr.LARGE_PAGE_SIZE, 4096))
        assert smalls.isdisjoint(larges)

    def test_alloc_small_wrapper(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        assert mem.alloc_small() == 0

    def test_counters(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        mem.alloc_frame()
        mem.alloc_frame(large=True)
        assert mem.small_allocated == 1
        assert mem.large_allocated == 1
        assert mem.bytes_allocated == addr.SMALL_PAGE_SIZE + addr.LARGE_PAGE_SIZE


class TestExhaustion:
    def test_small_region_exhausts(self):
        mem = PhysicalMemory(base=0, size_bytes=4 * addr.MiB,
                             large_region_fraction=0.5)
        for _ in range(512):  # 2MiB of small frames
            mem.alloc_frame()
        with pytest.raises(AddressError):
            mem.alloc_frame()

    def test_large_region_exhausts(self):
        mem = PhysicalMemory(base=0, size_bytes=4 * addr.MiB,
                             large_region_fraction=0.5)
        mem.alloc_frame(large=True)
        with pytest.raises(AddressError):
            mem.alloc_frame(large=True)


class TestReclamation:
    def test_freed_frame_reused_before_fresh(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        first = mem.alloc_frame()
        second = mem.alloc_frame()
        mem.free_frame(first)
        assert mem.alloc_frame() == first          # reuse, not bump
        assert mem.alloc_frame() == second + addr.SMALL_PAGE_SIZE

    def test_lifo_reuse_order(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frames = [mem.alloc_frame() for _ in range(3)]
        for frame in frames:
            mem.free_frame(frame)
        assert [mem.alloc_frame() for _ in range(3)] == frames[::-1]

    def test_large_frames_reclaimed_too(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frame = mem.alloc_frame(large=True)
        mem.free_frame(frame, large=True)
        assert mem.large_allocated == 0
        assert mem.alloc_frame(large=True) == frame

    def test_counters_track_live_not_cumulative(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frame = mem.alloc_frame()
        assert mem.bytes_allocated == addr.SMALL_PAGE_SIZE
        mem.free_frame(frame)
        assert mem.small_allocated == 0
        assert mem.bytes_allocated == 0

    def test_peak_is_high_water_mark(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frames = [mem.alloc_frame() for _ in range(3)]
        for frame in frames:
            mem.free_frame(frame)
        assert mem.bytes_allocated == 0
        assert mem.peak_bytes == 3 * addr.SMALL_PAGE_SIZE

    def test_double_free_rejected(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frame = mem.alloc_frame()
        mem.free_frame(frame)
        with pytest.raises(AddressError, match="double free"):
            mem.free_frame(frame)

    def test_free_of_never_allocated_frame_rejected(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        mem.alloc_frame()
        with pytest.raises(AddressError, match="never allocated"):
            mem.free_frame(0x10000)  # beyond the bump pointer

    def test_free_of_misaligned_frame_rejected(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        mem.alloc_frame()
        with pytest.raises(AddressError, match="misaligned"):
            mem.free_frame(0x123)

    def test_free_small_frame_as_large_rejected(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frame = mem.alloc_frame()
        mem.alloc_frame(large=True)
        # A 4KiB frame lies below the large region; freeing it as 2MiB
        # must be refused (frame 0 is 2MiB-aligned, so this exercises
        # the region check, not the alignment check).
        with pytest.raises(AddressError):
            mem.free_frame(frame, large=True)

    def test_audit_counters_conserve(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frames = [mem.alloc_frame() for _ in range(4)]
        big = mem.alloc_frame(large=True)
        mem.free_frame(frames[1])
        mem.free_frame(big, large=True)
        counters = mem.audit()
        assert counters["small_live"] == 3
        assert counters["small_free"] == 1
        assert counters["large_live"] == 0
        assert counters["large_free"] == 1
        assert counters["bytes_allocated"] == 3 * addr.SMALL_PAGE_SIZE

    def test_audit_catches_corrupt_free_list(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        mem.alloc_frame()
        mem._free_small.append(0x999000)  # out of range, planted
        mem._free_small_set.add(0x999000)
        with pytest.raises(AddressError):
            mem.audit()


class TestValidation:
    def test_misaligned_base_rejected(self):
        with pytest.raises(AddressError):
            PhysicalMemory(base=4096, size_bytes=addr.GiB)

    def test_bad_fraction_rejected(self):
        with pytest.raises(AddressError):
            PhysicalMemory(base=0, size_bytes=addr.GiB, large_region_fraction=0.0)

    def test_nonzero_base(self):
        mem = PhysicalMemory(base=addr.GiB, size_bytes=addr.GiB)
        assert mem.alloc_frame() == addr.GiB
