"""Unit tests for physical frame allocation."""

import pytest

from repro.common import addr
from repro.common.errors import AddressError
from repro.vmm.memory_manager import PhysicalMemory


class TestAllocation:
    def test_small_frames_are_sequential_and_aligned(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frames = [mem.alloc_frame() for _ in range(4)]
        assert frames == [0, 4096, 8192, 12288]

    def test_large_frames_are_2mib_aligned(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        frame = mem.alloc_frame(large=True)
        assert frame % addr.LARGE_PAGE_SIZE == 0

    def test_small_and_large_regions_disjoint(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        smalls = {mem.alloc_frame() for _ in range(100)}
        larges = set()
        for _ in range(10):
            base = mem.alloc_frame(large=True)
            larges.update(range(base, base + addr.LARGE_PAGE_SIZE, 4096))
        assert smalls.isdisjoint(larges)

    def test_alloc_small_wrapper(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        assert mem.alloc_small() == 0

    def test_counters(self):
        mem = PhysicalMemory(base=0, size_bytes=addr.GiB)
        mem.alloc_frame()
        mem.alloc_frame(large=True)
        assert mem.small_allocated == 1
        assert mem.large_allocated == 1
        assert mem.bytes_allocated == addr.SMALL_PAGE_SIZE + addr.LARGE_PAGE_SIZE


class TestExhaustion:
    def test_small_region_exhausts(self):
        mem = PhysicalMemory(base=0, size_bytes=4 * addr.MiB,
                             large_region_fraction=0.5)
        for _ in range(512):  # 2MiB of small frames
            mem.alloc_frame()
        with pytest.raises(AddressError):
            mem.alloc_frame()

    def test_large_region_exhausts(self):
        mem = PhysicalMemory(base=0, size_bytes=4 * addr.MiB,
                             large_region_fraction=0.5)
        mem.alloc_frame(large=True)
        with pytest.raises(AddressError):
            mem.alloc_frame(large=True)


class TestValidation:
    def test_misaligned_base_rejected(self):
        with pytest.raises(AddressError):
            PhysicalMemory(base=4096, size_bytes=addr.GiB)

    def test_bad_fraction_rejected(self):
        with pytest.raises(AddressError):
            PhysicalMemory(base=0, size_bytes=addr.GiB, large_region_fraction=0.0)

    def test_nonzero_base(self):
        mem = PhysicalMemory(base=addr.GiB, size_bytes=addr.GiB)
        assert mem.alloc_frame() == addr.GiB
