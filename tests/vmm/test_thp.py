"""Unit tests for the THP page-size policy."""

import pytest

from repro.vmm.thp import ThpPolicy


class TestThpPolicy:
    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            ThpPolicy(-0.1)
        with pytest.raises(ValueError):
            ThpPolicy(1.1)

    def test_all_small(self):
        thp = ThpPolicy(0.0)
        assert not any(thp.is_large_region(1, r) for r in range(100))

    def test_all_large(self):
        thp = ThpPolicy(1.0)
        assert all(thp.is_large_region(1, r) for r in range(100))

    def test_decision_is_stable(self):
        thp = ThpPolicy(0.5, seed=3)
        first = [thp.is_large_region(1, r) for r in range(50)]
        second = [thp.is_large_region(1, r) for r in range(50)]
        assert first == second

    def test_same_seed_reproduces_across_instances(self):
        a = ThpPolicy(0.5, seed=3)
        b = ThpPolicy(0.5, seed=3)
        assert [a.is_large_region(1, r) for r in range(50)] == \
               [b.is_large_region(1, r) for r in range(50)]

    def test_different_seeds_differ(self):
        a = ThpPolicy(0.5, seed=3)
        b = ThpPolicy(0.5, seed=4)
        assert [a.is_large_region(1, r) for r in range(200)] != \
               [b.is_large_region(1, r) for r in range(200)]

    def test_fraction_is_approximately_respected(self):
        thp = ThpPolicy(0.3, seed=7)
        for r in range(2000):
            thp.is_large_region(1, r)
        assert 0.25 < thp.observed_large_fraction() < 0.35

    def test_decided_regions_counts_unique(self):
        thp = ThpPolicy(0.5)
        thp.is_large_region(1, 0)
        thp.is_large_region(1, 0)
        thp.is_large_region(2, 0)
        assert thp.decided_regions() == 2

    def test_observed_fraction_empty_is_zero(self):
        assert ThpPolicy(0.5).observed_large_fraction() == 0.0
