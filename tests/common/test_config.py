"""Unit tests for configuration dataclasses and their validation."""

import pytest

from repro.common import addr
from repro.common.config import (
    CacheConfig,
    PomTlbConfig,
    PredictorConfig,
    SharedL2Config,
    SystemConfig,
    TlbConfig,
    TsbConfig,
    WalkCacheConfig,
    ddr4_timing,
    stacked_dram_timing,
)
from repro.common.errors import ConfigError


class TestCacheConfig:
    def test_skylake_l1d_geometry(self):
        cfg = SystemConfig().l1d
        assert cfg.size_bytes == 32 * addr.KiB
        assert cfg.ways == 8
        assert cfg.num_sets == 64

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="bad", size_bytes=96 * addr.KiB, ways=8, latency_cycles=4)

    def test_rejects_zero_latency(self):
        with pytest.raises(ConfigError):
            CacheConfig(name="bad", size_bytes=32 * addr.KiB, ways=8, latency_cycles=0)


class TestTlbConfig:
    def test_l2_tlb_defaults_match_table1(self):
        mmu = SystemConfig().mmu
        assert mmu.l2_unified.entries == 1536
        assert mmu.l2_unified.ways == 12
        assert mmu.l2_unified.miss_penalty_cycles == 17
        assert mmu.l1_small.entries == 64
        assert mmu.l1_large.entries == 32

    def test_rejects_bad_set_count(self):
        with pytest.raises(ConfigError):
            TlbConfig(name="bad", entries=96, ways=8, latency_cycles=1)


class TestDramTiming:
    def test_stacked_parameters_match_table1(self):
        t = stacked_dram_timing()
        assert (t.tcas, t.trcd, t.trp) == (11, 11, 11)
        assert t.bus_mhz == 1000
        assert t.bus_bits == 128
        assert t.row_buffer_bytes == 2048

    def test_ddr4_parameters_match_table1(self):
        t = ddr4_timing()
        assert (t.tcas, t.trcd, t.trp) == (14, 14, 14)
        assert t.bus_mhz == 1066
        assert t.bus_bits == 64

    def test_cpu_cycle_conversion_rounds_up(self):
        t = stacked_dram_timing()
        # 11 bus cycles at 1 GHz = 44 CPU cycles at 4 GHz.
        assert t.cpu_cycles(11, 4000) == 44
        # Non-integer ratios round up.
        assert ddr4_timing().cpu_cycles(1, 4000) == 4


class TestPomTlbConfig:
    def test_default_is_16mib_4way(self):
        cfg = PomTlbConfig()
        assert cfg.size_bytes == 16 * addr.MiB
        assert cfg.ways == 4
        assert cfg.small_size_bytes == 8 * addr.MiB
        assert cfg.large_size_bytes == 8 * addr.MiB

    def test_sets_are_line_granular(self):
        cfg = PomTlbConfig()
        assert cfg.small_sets * 64 == cfg.small_size_bytes
        assert cfg.large_sets * 64 == cfg.large_size_bytes

    def test_partitions_are_adjacent(self):
        cfg = PomTlbConfig()
        assert cfg.large_base == cfg.small_base + cfg.small_size_bytes

    def test_contains(self):
        cfg = PomTlbConfig()
        assert cfg.contains(cfg.base_address)
        assert cfg.contains(cfg.base_address + cfg.size_bytes - 1)
        assert not cfg.contains(cfg.base_address - 1)
        assert not cfg.contains(cfg.base_address + cfg.size_bytes)

    def test_entry_geometry_must_fill_line(self):
        with pytest.raises(ConfigError):
            PomTlbConfig(ways=8)  # 8 * 16B != 64B

    def test_row_holds_128_entries(self):
        # Paper Section 2.1.1: a 2 KiB row holds 128 entries = 32 sets.
        cfg = PomTlbConfig()
        row = stacked_dram_timing().row_buffer_bytes
        assert row // cfg.entry_bytes == 128
        assert row // 64 == 32


class TestPredictorConfig:
    def test_default_512_entries(self):
        cfg = PredictorConfig()
        assert cfg.entries == 512
        assert cfg.index_bits == 9

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ConfigError):
            PredictorConfig(entries=500)


class TestTsbConfig:
    def test_default_16mib_direct_mapped(self):
        cfg = TsbConfig()
        assert cfg.size_bytes == 16 * addr.MiB
        assert cfg.num_entries == addr.MiB  # 16MiB / 16B

    def test_rejects_non_power_of_two_entries(self):
        with pytest.raises(ConfigError):
            TsbConfig(size_bytes=48 * addr.KiB)


class TestSharedL2Config:
    def test_aggregate_capacity_scales_with_cores(self):
        cfg = SharedL2Config()
        assert cfg.tlb_config(8).entries == 8 * 1536

    def test_walk_cache_defaults(self):
        cfg = WalkCacheConfig()
        assert (cfg.pml4_entries, cfg.pdp_entries, cfg.pde_entries) == (2, 4, 32)


class TestSystemConfig:
    def test_defaults_are_8_core_4ghz(self):
        cfg = SystemConfig()
        assert cfg.num_cores == 8
        assert cfg.cpu_mhz == 4000
        assert cfg.virtualized is True
        assert cfg.cache_tlb_entries is True

    def test_copy_with_overrides(self):
        cfg = SystemConfig()
        other = cfg.copy_with(num_cores=4, cache_tlb_entries=False)
        assert other.num_cores == 4
        assert not other.cache_tlb_entries
        assert cfg.num_cores == 8  # original untouched

    def test_rejects_zero_cores(self):
        with pytest.raises(ConfigError):
            SystemConfig(num_cores=0)
