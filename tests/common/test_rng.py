"""Unit tests for deterministic RNG utilities."""

import pytest

from repro.common.rng import ZipfSampler, make_rng, shuffled_ranks, weighted_choice


class TestMakeRng:
    def test_same_seed_same_stream_reproduces(self):
        a = make_rng(42, "trace")
        b = make_rng(42, "trace")
        assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]

    def test_different_streams_decorrelate(self):
        a = make_rng(42, "trace")
        b = make_rng(42, "frames")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()


class TestZipfSampler:
    def test_rejects_bad_population(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, make_rng(0))

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, make_rng(0))

    def test_samples_within_range(self):
        sampler = ZipfSampler(100, 1.2, make_rng(1))
        for _ in range(1000):
            assert 0 <= sampler.sample() < 100

    def test_alpha_zero_is_roughly_uniform(self):
        sampler = ZipfSampler(4, 0.0, make_rng(2))
        counts = [0] * 4
        for _ in range(8000):
            counts[sampler.sample()] += 1
        for c in counts:
            assert 1600 < c < 2400

    def test_skew_prefers_low_ranks(self):
        sampler = ZipfSampler(1000, 1.5, make_rng(3))
        draws = [sampler.sample() for _ in range(5000)]
        top10 = sum(1 for d in draws if d < 10)
        # With alpha=1.5 the top-10 ranks take the large majority of mass.
        assert top10 > len(draws) * 0.5

    def test_single_item_population(self):
        sampler = ZipfSampler(1, 2.0, make_rng(4))
        assert sampler.sample() == 0


class TestShuffledRanks:
    def test_is_permutation(self):
        ranks = shuffled_ranks(100, make_rng(5))
        assert sorted(ranks) == list(range(100))

    def test_deterministic(self):
        assert shuffled_ranks(50, make_rng(6)) == shuffled_ranks(50, make_rng(6))


class TestWeightedChoice:
    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            weighted_choice(["a"], [1.0, 2.0], make_rng(7))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            weighted_choice([], [], make_rng(7))

    def test_respects_weights(self):
        rng = make_rng(8)
        picks = [weighted_choice(["a", "b"], [9.0, 1.0], rng) for _ in range(2000)]
        assert picks.count("a") > 1600

    def test_zero_weight_never_picked(self):
        rng = make_rng(9)
        picks = {weighted_choice(["a", "b"], [1.0, 0.0], rng) for _ in range(500)}
        assert picks == {"a"}
