"""Unit tests for the shared atomic file-writing helpers."""

import pytest

from repro.common.fileio import AtomicFile, atomic_write_text


class TestAtomicWriteText:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "hello\n")
        assert path.read_text() == "hello\n"

    def test_replaces_existing(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        atomic_write_text(str(path), "new")
        assert path.read_text() == "new"

    def test_no_temp_file_left(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic_write_text(str(path), "x")
        assert list(tmp_path.iterdir()) == [path]

    def test_failure_leaves_destination_untouched(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("precious")
        with pytest.raises(OSError):
            atomic_write_text(str(tmp_path / "missing" / "out.txt"), "x")
        assert path.read_text() == "precious"

    def test_missing_directory_raises_and_cleans_up(self, tmp_path):
        target = tmp_path / "no-such-dir" / "out.txt"
        with pytest.raises(OSError):
            atomic_write_text(str(target), "x")
        assert not target.exists()


class TestAtomicFile:
    def test_commit_makes_content_visible(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic = AtomicFile(str(path))
        atomic.file.write("streamed")
        assert not path.exists()          # invisible until commit
        atomic.commit()
        assert path.read_text() == "streamed"
        assert not (tmp_path / "out.txt.tmp").exists()

    def test_abort_discards(self, tmp_path):
        path = tmp_path / "out.txt"
        atomic = AtomicFile(str(path))
        atomic.file.write("garbage")
        atomic.abort()
        assert not path.exists()
        assert not (tmp_path / "out.txt.tmp").exists()

    def test_abort_preserves_previous_version(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("v1")
        atomic = AtomicFile(str(path))
        atomic.file.write("v2 partial")
        atomic.abort()
        assert path.read_text() == "v1"

    def test_commit_idempotent(self, tmp_path):
        atomic = AtomicFile(str(tmp_path / "out.txt"))
        atomic.file.write("x")
        atomic.commit()
        atomic.commit()  # second call is a no-op, not an error
