"""Unit tests for address arithmetic helpers."""

import pytest

from repro.common import addr
from repro.common.errors import AddressError


class TestPageGeometry:
    def test_small_page_size(self):
        assert addr.SMALL_PAGE_SIZE == 4096

    def test_large_page_size(self):
        assert addr.LARGE_PAGE_SIZE == 2 * 1024 * 1024

    def test_small_pages_per_large(self):
        assert addr.SMALL_PAGES_PER_LARGE == 512

    def test_page_shift(self):
        assert addr.page_shift(False) == 12
        assert addr.page_shift(True) == 21

    def test_page_size_by_flag(self):
        assert addr.page_size(False) == addr.SMALL_PAGE_SIZE
        assert addr.page_size(True) == addr.LARGE_PAGE_SIZE


class TestVpnAndOffset:
    def test_vpn_small(self):
        assert addr.vpn(0x12345678, large=False) == 0x12345678 >> 12

    def test_vpn_large(self):
        assert addr.vpn(0x12345678, large=True) == 0x12345678 >> 21

    def test_offset_small(self):
        assert addr.page_offset(0x1234, large=False) == 0x234

    def test_offset_large(self):
        assert addr.page_offset(0x2FFFFF, large=True) == 0xFFFFF

    def test_page_base_plus_offset_reconstructs(self):
        va = 0xDEADBEEF123
        for large in (False, True):
            assert addr.page_base(va, large) + addr.page_offset(va, large) == va

    def test_large_small_vpn_roundtrip(self):
        small = 0x12345
        large = addr.large_vpn_of_small(small)
        assert addr.small_vpn_of_large(large) <= small
        assert addr.small_vpn_of_large(large + 1) > small


class TestCacheLines:
    def test_cache_line_number(self):
        assert addr.cache_line(0) == 0
        assert addr.cache_line(63) == 0
        assert addr.cache_line(64) == 1

    def test_cache_line_base(self):
        assert addr.cache_line_base(0x1234) == 0x1200


class TestRadixIndex:
    def test_level_1_uses_bits_12_to_20(self):
        va = 0b111111111 << 12
        assert addr.radix_index(va, 1) == 0b111111111
        assert addr.radix_index(va, 2) == 0

    def test_level_4_uses_bits_39_to_47(self):
        va = 0x1FF << 39
        assert addr.radix_index(va, 4) == 0x1FF

    def test_indices_cover_distinct_bits(self):
        va = sum((i + 1) << (12 + 9 * i) for i in range(4))
        assert [addr.radix_index(va, lvl) for lvl in (1, 2, 3, 4)] == [1, 2, 3, 4]

    def test_invalid_level_raises(self):
        with pytest.raises(AddressError):
            addr.radix_index(0, 0)
        with pytest.raises(AddressError):
            addr.radix_index(0, 5)


class TestBitHelpers:
    def test_is_power_of_two(self):
        assert addr.is_power_of_two(1)
        assert addr.is_power_of_two(4096)
        assert not addr.is_power_of_two(0)
        assert not addr.is_power_of_two(3)
        assert not addr.is_power_of_two(-4)

    def test_ilog2(self):
        assert addr.ilog2(1) == 0
        assert addr.ilog2(4096) == 12

    def test_ilog2_rejects_non_power(self):
        with pytest.raises(AddressError):
            addr.ilog2(12)

    def test_align_up(self):
        assert addr.align_up(1, 4096) == 4096
        assert addr.align_up(4096, 4096) == 4096
        assert addr.align_up(4097, 4096) == 8192

    def test_align_up_rejects_bad_alignment(self):
        with pytest.raises(AddressError):
            addr.align_up(1, 3)

    def test_canonical_truncates_to_48_bits(self):
        assert addr.canonical(1 << 60) == 0
        assert addr.canonical((1 << 48) - 1) == (1 << 48) - 1


class TestPrettySize:
    def test_round_units(self):
        assert addr.pretty_size(16 * addr.MiB) == "16MiB"
        assert addr.pretty_size(4 * addr.KiB) == "4KiB"
        assert addr.pretty_size(2 * addr.GiB) == "2GiB"

    def test_odd_bytes(self):
        assert addr.pretty_size(100) == "100B"
