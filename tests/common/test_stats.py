"""Unit tests for the statistics counters."""

import pytest

from repro.common.stats import StatGroup, StatRegistry


class TestStatGroup:
    def test_inc_creates_and_accumulates(self):
        g = StatGroup("g")
        g.inc("hits")
        g.inc("hits", 2)
        assert g["hits"] == 3

    def test_missing_counter_reads_zero(self):
        g = StatGroup("g")
        assert g["nothing"] == 0
        assert g.get("nothing", 7) == 7

    def test_set_overwrites(self):
        g = StatGroup("g")
        g.inc("x", 5)
        g.set("x", 1)
        assert g["x"] == 1

    def test_ratio(self):
        g = StatGroup("g")
        g.inc("hits", 3)
        g.inc("total", 4)
        assert g.ratio("hits", "total") == pytest.approx(0.75)

    def test_ratio_zero_denominator_is_zero(self):
        g = StatGroup("g")
        assert g.ratio("hits", "total") == 0.0

    def test_contains(self):
        g = StatGroup("g")
        assert "hits" not in g
        g.inc("hits")
        assert "hits" in g

    def test_reset(self):
        g = StatGroup("g")
        g.inc("hits")
        g.reset()
        assert g["hits"] == 0
        assert g.as_dict() == {}

    def test_reset_forgets_keys_entirely(self):
        g = StatGroup("g")
        g.inc("hits", 4)
        g.reset()
        assert "hits" not in g           # forgotten, not kept at zero
        assert list(g) == []
        g.inc("hits")                    # recreated from scratch at zero
        assert g["hits"] == 1

    def test_merge(self):
        a, b = StatGroup("a"), StatGroup("b")
        a.inc("x", 1)
        b.inc("x", 2)
        b.inc("y", 3)
        a.merge(b)
        assert a["x"] == 3
        assert a["y"] == 3

    def test_merge_accumulates_and_leaves_source_untouched(self):
        a, b = StatGroup("a"), StatGroup("b")
        b.inc("x", 2.5)
        a.merge(b)
        a.merge(b)                       # merging twice doubles, not replaces
        assert a["x"] == 5.0
        assert b.as_dict() == {"x": 2.5}

    def test_merge_empty_group_is_identity(self):
        a = StatGroup("a")
        a.inc("x", 7)
        a.merge(StatGroup("b"))
        assert a.as_dict() == {"x": 7}

    def test_merge_after_reset_starts_from_zero(self):
        a, b = StatGroup("a"), StatGroup("b")
        a.inc("x", 100)
        b.inc("x", 3)
        a.reset()
        a.merge(b)
        assert a["x"] == 3

    def test_as_dict_sorted(self):
        g = StatGroup("g")
        g.inc("z")
        g.inc("a")
        assert list(g.as_dict()) == ["a", "z"]

    def test_iteration(self):
        g = StatGroup("g")
        g.inc("b", 2)
        g.inc("a", 1)
        assert list(g) == [("a", 1), ("b", 2)]


class TestStatRegistry:
    def test_group_is_created_once(self):
        reg = StatRegistry()
        assert reg.group("x") is reg.group("x")

    def test_register_foreign_group(self):
        reg = StatRegistry()
        g = StatGroup("mine")
        assert reg.register(g) is g
        assert reg["mine"] is g

    def test_register_rejects_name_collision(self):
        reg = StatRegistry()
        reg.group("x")
        with pytest.raises(ValueError):
            reg.register(StatGroup("x"))

    def test_register_same_object_is_idempotent(self):
        reg = StatRegistry()
        g = reg.group("x")
        assert reg.register(g) is g

    def test_duplicate_register_keeps_the_original_group(self):
        reg = StatRegistry()
        original = reg.group("x")
        original.inc("n", 5)
        with pytest.raises(ValueError):
            reg.register(StatGroup("x"))
        assert reg["x"] is original      # failed register must not clobber
        assert reg["x"]["n"] == 5

    def test_registry_reset_forgets_keys_but_keeps_groups(self):
        reg = StatRegistry()
        g = reg.group("a")
        g.inc("n", 5)
        reg.reset()
        assert "a" in reg                # group survives
        assert reg["a"] is g
        assert "n" not in g              # its counters do not

    def test_contains_and_groups(self):
        reg = StatRegistry()
        reg.group("a")
        assert "a" in reg
        assert "b" not in reg
        assert set(reg.groups()) == {"a"}

    def test_reset_all(self):
        reg = StatRegistry()
        reg.group("a").inc("n", 5)
        reg.reset()
        assert reg["a"]["n"] == 0

    def test_nested_dict_snapshot(self):
        reg = StatRegistry()
        reg.group("a").inc("n", 5)
        assert reg.as_nested_dict() == {"a": {"n": 5}}

    def test_render_formats_ints_and_floats(self):
        reg = StatRegistry()
        reg.group("a").inc("n", 5)
        reg.group("a").set("r", 0.5)
        text = reg.render()
        assert "a.n = 5" in text
        assert "a.r = 0.5" in text
