"""Shared-memory workload segment lifecycle (ISSUE 4, satellite 4).

The campaign parent owns every published segment; they must be unlinked
when the campaign completes, and just as reliably when it degrades —
worker crashes, run timeouts, Ctrl-C.  A leaked segment is a leaked
file under /dev/shm that outlives the process.
"""

import io

import pytest

from repro.common.errors import PackedTraceError
from repro.experiments import campaign
from repro.experiments.runner import ExperimentParams
from repro.faults import FaultPlan
from repro.workloads import shm as workload_shm
from repro.workloads.packed import encode_workload
from repro.workloads.shm import (
    WorkloadArena,
    WorkloadRef,
    attach_container,
    segment_exists,
    shm_available,
)
from repro.workloads.suite import get_profile

pytestmark = pytest.mark.skipif(not shm_available(),
                                reason="platform lacks POSIX shared memory")

POOLED = ExperimentParams(num_cores=1, refs_per_core=300, scale=0.02,
                          seed=5, workers=2, max_retries=0,
                          retry_backoff_s=0.0, run_timeout_s=60.0)


def small_workload():
    return get_profile("gups").build(num_cores=1, refs_per_core=50,
                                     seed=3, scale=0.05)


class _RecordingArena(WorkloadArena):
    """Arena that remembers every segment name it ever published."""

    published = []

    def publish(self, key, blob):
        name = super().publish(key, blob)
        _RecordingArena.published.append(name)
        return name


@pytest.fixture
def recorded_arena(monkeypatch):
    _RecordingArena.published = []
    monkeypatch.setattr(workload_shm, "WorkloadArena", _RecordingArena)
    return _RecordingArena


def run_pooled(**kwargs):
    return campaign.run_all(POOLED, ["gups"], out=io.StringIO(),
                            progress=io.StringIO(),
                            include_sensitivity=False, **kwargs)


class TestArena:
    def test_publish_then_release_unlinks(self):
        arena = WorkloadArena()
        name = arena.publish_workload("a" * 32, small_workload())
        assert segment_exists(name)
        arena.release()
        assert not segment_exists(name)

    def test_release_is_idempotent(self):
        arena = WorkloadArena()
        arena.publish_workload("b" * 32, small_workload())
        arena.release()
        arena.release()
        assert len(arena) == 0

    def test_context_manager_releases_on_error(self):
        with pytest.raises(RuntimeError):
            with WorkloadArena() as arena:
                name = arena.publish_workload("c" * 32, small_workload())
                raise RuntimeError("campaign blew up")
        assert not segment_exists(name)

    def test_republish_same_key_is_one_segment(self):
        blob = encode_workload(small_workload())
        with WorkloadArena() as arena:
            first = arena.publish("d" * 32, blob)
            second = arena.publish("d" * 32, blob)
            assert first == second
            assert len(arena) == 1

    def test_stale_same_name_segment_is_replaced(self):
        from multiprocessing import shared_memory

        blob = encode_workload(small_workload())
        arena = WorkloadArena()
        name = arena.publish("e" * 32, blob)
        # Simulate a leftover from a killed campaign with a reused PID:
        # the name is taken but the arena must adopt it by replacement.
        arena._segments.clear()                # forget, don't unlink
        orphan = shared_memory.SharedMemory(name=name)
        try:
            replacement = arena.publish("e" * 32, blob)
            assert replacement == name
            assert segment_exists(name)
        finally:
            orphan.close()
            arena.release()
        assert not segment_exists(name)


class TestAttach:
    def test_worker_attach_does_not_unlink(self):
        workload = small_workload()
        with WorkloadArena() as arena:
            name = arena.publish_workload("f" * 32, workload,
                                          validated=True)
            ref = WorkloadRef(benchmark="gups", key="f" * 32,
                              shm_name=name)
            container = attach_container(ref)
            assert list(container.streams[0].references) == \
                list(workload.streams[0].references)
            container.backing.close()
            assert segment_exists(name)        # close != unlink
        assert not segment_exists(name)

    def test_vanished_segment_is_a_packed_trace_error(self):
        ref = WorkloadRef(benchmark="gups", key="0" * 32,
                          shm_name="pomtlb-wl-never-existed-xyz")
        with pytest.raises(PackedTraceError, match="vanished"):
            attach_container(ref)

    def test_empty_ref_rejected(self):
        with pytest.raises(PackedTraceError, match="neither"):
            attach_container(WorkloadRef(benchmark="gups", key="0" * 32))


class TestCampaignLifecycle:
    def test_segments_unlinked_after_completion(self, recorded_arena):
        result = run_pooled()
        assert not result.failures
        assert recorded_arena.published     # pooled campaign used shm
        for name in recorded_arena.published:
            assert not segment_exists(name)

    def test_segments_unlinked_after_worker_crash(self, recorded_arena):
        result = run_pooled(faults=FaultPlan.parse("crash@gups/pom#*"))
        assert {f.error.type for f in result.failures} == {"WorkerCrash"}
        assert recorded_arena.published
        for name in recorded_arena.published:
            assert not segment_exists(name)

    def test_segments_unlinked_after_timeout(self, recorded_arena):
        import dataclasses

        quick = dataclasses.replace(POOLED, run_timeout_s=1.0)
        result = campaign.run_all(
            quick, ["gups"], out=io.StringIO(), progress=io.StringIO(),
            include_sensitivity=False,
            faults=FaultPlan.parse("hang@gups/tsb#*"))
        assert {f.error.type for f in result.failures} == {"RunTimeout"}
        assert recorded_arena.published
        for name in recorded_arena.published:
            assert not segment_exists(name)

    def test_segments_unlinked_after_interrupt(self, recorded_arena):
        with pytest.raises(KeyboardInterrupt):
            run_pooled(faults=FaultPlan.parse("interrupt@gups/baseline#1"))
        assert recorded_arena.published
        for name in recorded_arena.published:
            assert not segment_exists(name)
