"""Unit tests for the checkpoint store: keys, round trips, durability."""

import dataclasses
import json

import pytest

from repro.common.errors import CheckpointError
from repro.experiments.runner import ExperimentParams, simulate_run
from repro.faults import FaultPlan
from repro.resilience import CheckpointStore, run_key
from repro.resilience.checkpoint import deserialize_run, serialize_run

TINY = ExperimentParams(num_cores=1, refs_per_core=300, scale=0.02, seed=5)


@pytest.fixture(scope="module")
def run():
    return simulate_run("gups", "pom", TINY)


class TestRunKey:
    def test_stable(self):
        assert run_key("gups", "pom", TINY) == run_key("gups", "pom", TINY)
        assert len(run_key("gups", "pom", TINY)) == 32

    def test_benchmark_and_scheme_participate(self):
        base = run_key("gups", "pom", TINY)
        assert run_key("mcf", "pom", TINY) != base
        assert run_key("gups", "tsb", TINY) != base

    def test_seed_change_misses(self):
        other = dataclasses.replace(TINY, seed=TINY.seed + 1)
        assert run_key("gups", "pom", other) != run_key("gups", "pom", TINY)

    @pytest.mark.parametrize("field,value", [
        ("scale", 0.5), ("num_cores", 2), ("pom_size_bytes", 8 << 20),
        ("cache_tlb_entries", False), ("virtualized", False),
    ])
    def test_simulation_fields_participate(self, field, value):
        other = dataclasses.replace(TINY, **{field: value})
        assert run_key("gups", "pom", other) != run_key("gups", "pom", TINY)

    @pytest.mark.parametrize("field,value", [
        ("workers", 8), ("run_timeout_s", 60.0),
        ("max_retries", 9), ("retry_backoff_s", 2.0),
    ])
    def test_execution_knobs_excluded(self, field, value):
        other = dataclasses.replace(TINY, **{field: value})
        assert run_key("gups", "pom", other) == run_key("gups", "pom", TINY)

    def test_keys_stable_across_engine_changes(self):
        """Pinned hashes: pre-rewrite checkpoints must keep resuming.

        The fast-path engine rewrite changed how results are *computed*,
        not what they are, and introduced no new simulation parameters —
        so keys written by older checkpoints must still hit.  These two
        values were recorded before the rewrite; if either assert fires,
        a field was added to (or dropped from) the content hash and
        ``--resume`` would silently re-run every finished campaign.
        """
        assert (run_key("gups", "pom", ExperimentParams())
                == "252f78e6d61a8d90c7e10a039d57be05")
        assert (run_key("gcc", "baseline",
                        ExperimentParams(num_cores=2, refs_per_core=400,
                                         scale=0.05, seed=7))
                == "222eb1f1fa235ab3569736387b316d90")


class TestSerialization:
    def test_round_trip(self, run):
        restored = deserialize_run(json.loads(json.dumps(serialize_run(run))))
        assert restored.benchmark == run.benchmark
        assert restored.scheme == run.scheme
        assert restored.result.references == run.result.references
        assert restored.result.l2_tlb_misses == run.result.l2_tlb_misses
        assert restored.result.penalty_cycles == run.result.penalty_cycles
        assert restored.performance == run.performance
        assert (restored.result.stats.as_nested_dict()
                == run.result.stats.as_nested_dict())

    def test_histograms_survive(self, run):
        restored = deserialize_run(serialize_run(run))
        assert run.result.histograms is not None
        for name, histogram in run.result.histograms.items():
            assert restored.result.histograms[name].as_dict() \
                == histogram.as_dict()

    def test_windows_not_persisted(self, run):
        assert deserialize_run(serialize_run(run)).result.windows is None

    def test_derived_metrics_agree(self, run):
        restored = deserialize_run(serialize_run(run))
        assert restored.result.pom_hit_ratio() == run.result.pom_hit_ratio()
        assert restored.result.walk_elimination == run.result.walk_elimination
        assert restored.improvement_percent == run.improvement_percent


class TestStore:
    def test_persists_across_instances(self, run, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        key = run_key(run.benchmark, run.scheme, TINY)
        CheckpointStore(path).put(key, run)
        reopened = CheckpointStore(path)
        assert key in reopened
        assert len(reopened) == 1
        assert reopened.get(key).performance == run.performance

    def test_missing_key_is_none(self, tmp_path):
        assert CheckpointStore(str(tmp_path / "ck.jsonl")).get("nope") is None

    def test_header_line_first(self, run, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointStore(str(path)).put("k", run)
        first = path.read_text().splitlines()[0]
        assert json.loads(first) == {"pomtlb_checkpoint": 1}

    def test_load_false_starts_fresh(self, run, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        CheckpointStore(path).put("old", run)
        fresh = CheckpointStore(path, load=False)
        assert "old" not in fresh
        fresh.put("new", run)
        assert "old" not in CheckpointStore(path)

    def test_damaged_line_skipped_not_fatal(self, run, tmp_path):
        path = tmp_path / "ck.jsonl"
        store = CheckpointStore(str(path))
        store.put("good", run)
        with open(path, "a") as handle:
            handle.write('{"key": "torn", "run": {"result"\n')
        reopened = CheckpointStore(str(path))
        assert "good" in reopened
        assert reopened.skipped_lines == 1

    def test_wrong_version_rejected(self, tmp_path):
        path = tmp_path / "ck.jsonl"
        path.write_text('{"pomtlb_checkpoint": 99}\n')
        with pytest.raises(CheckpointError, match="99"):
            CheckpointStore(str(path))

    def test_foreign_file_rejected(self, tmp_path):
        path = tmp_path / "notes.txt"
        path.write_text("hello world\n")
        with pytest.raises(CheckpointError):
            CheckpointStore(str(path))

    def test_no_temp_file_left_behind(self, run, tmp_path):
        path = tmp_path / "ck.jsonl"
        CheckpointStore(str(path)).put("k", run)
        assert not (tmp_path / "ck.jsonl.tmp").exists()

    def test_injected_io_fault_raises_but_keeps_record(self, run, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        store = CheckpointStore(path, faults=FaultPlan.parse("ckpt-io#1"))
        with pytest.raises(OSError, match="injected"):
            store.put("first", run)
        assert "first" in store          # in memory despite the failure
        store.put("second", run)         # fault consumed; this one persists
        reopened = CheckpointStore(path)
        assert "first" in reopened and "second" in reopened
