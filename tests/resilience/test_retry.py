"""Unit tests for error classification and deterministic backoff."""

import pytest

from repro.common.errors import (
    ConfigError,
    FaultInjected,
    ReproError,
    RunTimeout,
    TraceFormatError,
    TransientError,
    WorkerCrash,
)
from repro.resilience import RetryPolicy, is_transient


class TestClassification:
    def test_transient_errors(self):
        assert is_transient(RunTimeout("gups", "pom", 5.0))
        assert is_transient(WorkerCrash("gups", "pom", 134))
        assert is_transient(FaultInjected("boom"))
        assert is_transient(TransientError("generic"))

    def test_permanent_errors(self):
        assert not is_transient(TraceFormatError("bad"))
        assert not is_transient(ConfigError("bad"))
        assert not is_transient(ReproError("generic"))
        assert not is_transient(ValueError("not even ours"))

    def test_error_messages_carry_context(self):
        timeout = RunTimeout("gups", "pom", 5.0)
        assert "gups" in str(timeout) and "5" in str(timeout)
        crash = WorkerCrash("mcf", "tsb", 134)
        assert "mcf" in str(crash) and "134" in str(crash)


class TestPolicyValidation:
    def test_defaults_valid(self):
        RetryPolicy()

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-0.1)

    def test_shrinking_factor_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)

    def test_jitter_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)


class TestShouldRetry:
    def test_transient_within_budget(self):
        policy = RetryPolicy(max_retries=2)
        error = RunTimeout("gups", "pom", 1.0)
        assert policy.should_retry(error, 1)
        assert policy.should_retry(error, 2)
        assert not policy.should_retry(error, 3)

    def test_permanent_never_retries(self):
        policy = RetryPolicy(max_retries=5)
        assert not policy.should_retry(TraceFormatError("bad"), 1)

    def test_zero_retries(self):
        policy = RetryPolicy(max_retries=0)
        assert not policy.should_retry(RunTimeout("gups", "pom", 1.0), 1)


class TestBackoff:
    def test_deterministic_for_same_inputs(self):
        a = RetryPolicy(seed=7).delay_s("key", 1)
        b = RetryPolicy(seed=7).delay_s("key", 1)
        assert a == b

    def test_seed_changes_jitter(self):
        assert (RetryPolicy(seed=1).delay_s("key", 1)
                != RetryPolicy(seed=2).delay_s("key", 1))

    def test_key_changes_jitter(self):
        policy = RetryPolicy()
        assert policy.delay_s("run-a", 1) != policy.delay_s("run-b", 1)

    def test_exponential_growth_within_jitter_band(self):
        policy = RetryPolicy(base_delay_s=1.0, factor=2.0, jitter=0.5,
                             max_delay_s=1000.0)
        for attempt in (1, 2, 3, 4):
            base = 2.0 ** (attempt - 1)
            delay = policy.delay_s("key", attempt)
            assert base <= delay <= base * 1.5

    def test_cap_applies_before_jitter(self):
        policy = RetryPolicy(base_delay_s=10.0, factor=10.0, jitter=0.5,
                             max_delay_s=15.0)
        assert policy.delay_s("key", 5) <= 15.0 * 1.5

    def test_zero_jitter_is_exact(self):
        policy = RetryPolicy(base_delay_s=0.5, factor=2.0, jitter=0.0)
        assert policy.delay_s("key", 2) == 1.0

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().delay_s("key", 0)
