"""Unit tests for the fault-injection plan and its grammar."""

import pytest

from repro.common.errors import ConfigError, FaultInjected, TraceFormatError
from repro.faults import (
    NO_FAULTS,
    NO_TRANSLATION_FAULTS,
    UNLIMITED,
    FaultPlan,
    RaiseAtTranslation,
    corrupt_streams,
)
from repro.workloads.trace import CoreStream, MemoryReference, validate_stream


class TestGrammar:
    def test_bare_kind(self):
        plan = FaultPlan.parse("crash")
        rule = plan.rules[0]
        assert (rule.kind, rule.benchmark, rule.scheme, rule.remaining) == \
            ("crash", "*", "*", 1)

    def test_target_benchmark_and_scheme(self):
        rule = FaultPlan.parse("hang@mcf/tsb").rules[0]
        assert (rule.benchmark, rule.scheme) == ("mcf", "tsb")

    def test_target_benchmark_only(self):
        rule = FaultPlan.parse("crash@gups").rules[0]
        assert (rule.benchmark, rule.scheme) == ("gups", "*")

    def test_count(self):
        assert FaultPlan.parse("crash#3").rules[0].remaining == 3

    def test_unlimited_count(self):
        assert FaultPlan.parse("crash#*").rules[0].remaining == UNLIMITED

    def test_raise_trigger_point(self):
        rule = FaultPlan.parse("raise@gups/pom:n=250").rules[0]
        assert (rule.kind, rule.n) == ("raise", 250)

    def test_multiple_directives(self):
        plan = FaultPlan.parse("crash@gups/pom#*, hang@mcf, ckpt-io")
        assert [r.kind for r in plan.rules] == ["crash", "hang", "ckpt-io"]

    @pytest.mark.parametrize("spec", [
        "explode",            # unknown kind
        "crash#zero",         # non-integer count
        "crash#0",            # count below 1
        "raise:n=abc",        # non-integer trigger
        "raise:n=0",          # trigger below 1
        "crash:m=3",          # unknown parameter
        "",                   # no directives at all
        " , ,",               # only separators
    ])
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            FaultPlan.parse(spec)

    def test_bad_spec_error_names_directive(self):
        with pytest.raises(ConfigError, match="explode"):
            FaultPlan.parse("explode@gups")


class TestConsumption:
    def test_counted_rule_fires_then_stops(self):
        plan = FaultPlan.parse("crash@gups/pom#2")
        assert plan.take_run_fault("gups", "pom") == ("crash", 1)
        assert plan.take_run_fault("gups", "pom") == ("crash", 1)
        assert plan.take_run_fault("gups", "pom") is None

    def test_unlimited_rule_never_exhausts(self):
        plan = FaultPlan.parse("crash#*")
        for _ in range(10):
            assert plan.take_run_fault("any", "thing") == ("crash", 1)

    def test_targeting_filters_matches(self):
        plan = FaultPlan.parse("crash@gups/pom")
        assert plan.take_run_fault("gups", "tsb") is None
        assert plan.take_run_fault("mcf", "pom") is None
        assert plan.take_run_fault("gups", "pom") == ("crash", 1)

    def test_at_most_one_directive_per_attempt(self):
        plan = FaultPlan.parse("crash@gups#1,hang@gups#1")
        assert plan.take_run_fault("gups", "pom") == ("crash", 1)
        assert plan.take_run_fault("gups", "pom") == ("hang", 1)
        assert plan.take_run_fault("gups", "pom") is None

    def test_checkpoint_fault_separate_from_run_faults(self):
        plan = FaultPlan.parse("ckpt-io#1,crash#1")
        assert plan.take_run_fault("gups", "pom") == ("crash", 1)
        assert plan.take_checkpoint_fault()
        assert not plan.take_checkpoint_fault()

    def test_run_query_never_consumes_ckpt_io(self):
        plan = FaultPlan.parse("ckpt-io#1")
        assert plan.take_run_fault("gups", "pom") is None
        assert plan.take_checkpoint_fault()


class TestNullObjects:
    def test_no_faults_disabled(self):
        assert not NO_FAULTS.enabled
        assert NO_FAULTS.take_run_fault("gups", "pom") is None
        assert not NO_FAULTS.take_checkpoint_fault()

    def test_parsed_plan_enabled(self):
        assert FaultPlan.parse("crash").enabled

    def test_translation_null_inactive(self):
        assert not NO_TRANSLATION_FAULTS.active


class TestSimulationHooks:
    def test_raise_at_translation_counts(self):
        faulter = RaiseAtTranslation(3)
        faulter.on_translation()
        faulter.on_translation()
        with pytest.raises(FaultInjected, match="translation 3"):
            faulter.on_translation()

    def test_corrupt_streams_trips_validation(self):
        refs = [MemoryReference(i * 10, 0x1000 * (i + 1), False)
                for i in range(5)]
        stream = CoreStream(core=0, vm_id=0, asid=1, references=refs)
        corrupt_streams([stream])
        with pytest.raises(TraceFormatError, match="out of range"):
            validate_stream(stream)

    def test_corrupt_streams_skips_empty(self):
        empty = CoreStream(core=0, vm_id=0, asid=1)
        target = CoreStream(core=1, vm_id=0, asid=2,
                            references=[MemoryReference(0, 0x1000, False)])
        corrupt_streams([empty, target])
        assert target.references[0].vaddr == -1
