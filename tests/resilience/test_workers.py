"""Unit tests for the resilient executor, serial and pooled."""

import pytest

from repro.common.errors import RunTimeout, TraceFormatError
from repro.experiments.runner import ExperimentParams, simulate_run
from repro.faults import NO_FAULTS, FaultPlan
from repro.obs import EventTracer
from repro.obs.sinks import ListSink
from repro.resilience import (
    CheckpointStore,
    RetryPolicy,
    RunRequest,
    execute_runs,
    run_key,
)

TINY = ExperimentParams(num_cores=1, refs_per_core=300, scale=0.02, seed=5)

#: No-sleep policy so retry tests don't wait out real backoff delays.
FAST_RETRY = RetryPolicy(max_retries=2, base_delay_s=0.0, jitter=0.0)


def request(benchmark="gups", scheme="pom", params=TINY):
    return RunRequest(benchmark, scheme, params)


class _StubRun:
    """Stands in for a BenchmarkRun where no checkpoint store is involved."""

    benchmark = "gups"
    scheme = "pom"


class TestSerial:
    def test_success(self):
        calls = []

        def simulate(req, fault):
            calls.append(req.label)
            return _StubRun()

        outcomes = execute_runs([request()], retry=FAST_RETRY,
                                simulate=simulate)
        assert len(outcomes) == 1
        assert outcomes[0].ok
        assert outcomes[0].attempts == 1
        assert not outcomes[0].restored
        assert calls == ["(gups, pom)"]

    def test_duplicate_requests_execute_once(self):
        calls = []

        def simulate(req, fault):
            calls.append(req.label)
            return _StubRun()

        outcomes = execute_runs([request(), request()], retry=FAST_RETRY,
                                simulate=simulate)
        assert len(outcomes) == 1
        assert len(calls) == 1

    def test_transient_error_retried_to_success(self):
        attempts = []

        def simulate(req, fault):
            attempts.append(1)
            if len(attempts) == 1:
                raise RunTimeout(req.benchmark, req.scheme, 1.0)
            return _StubRun()

        outcomes = execute_runs([request()], retry=FAST_RETRY,
                                simulate=simulate)
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2

    def test_transient_exhaustion_becomes_failure(self):
        def simulate(req, fault):
            raise RunTimeout(req.benchmark, req.scheme, 1.0)

        outcomes = execute_runs([request()], retry=FAST_RETRY,
                                simulate=simulate)
        outcome = outcomes[0]
        assert not outcome.ok
        assert outcome.failure.error.type == "RunTimeout"
        assert outcome.failure.attempts == FAST_RETRY.max_retries + 1

    def test_permanent_error_fails_immediately(self):
        calls = []

        def simulate(req, fault):
            calls.append(1)
            raise TraceFormatError("corrupt")

        outcomes = execute_runs([request()], retry=FAST_RETRY,
                                simulate=simulate)
        assert not outcomes[0].ok
        assert outcomes[0].failure.error.type == "TraceFormatError"
        assert len(calls) == 1

    def test_crash_fault_degrades_to_worker_crash(self):
        plan = FaultPlan.parse("crash@gups/pom#*")
        outcomes = execute_runs([request()], retry=FAST_RETRY, faults=plan,
                                simulate=lambda req, fault: _StubRun())
        assert outcomes[0].failure.error.type == "WorkerCrash"

    def test_hang_fault_degrades_to_timeout(self):
        plan = FaultPlan.parse("hang@gups/pom#*")
        outcomes = execute_runs([request()], retry=FAST_RETRY, faults=plan,
                                simulate=lambda req, fault: _StubRun())
        assert outcomes[0].failure.error.type == "RunTimeout"

    def test_single_crash_recovers_on_retry(self):
        plan = FaultPlan.parse("crash@gups/pom#1")
        outcomes = execute_runs([request()], retry=FAST_RETRY, faults=plan,
                                simulate=lambda req, fault: _StubRun())
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2

    def test_interrupt_fault_raises_keyboard_interrupt(self):
        plan = FaultPlan.parse("interrupt#1")
        with pytest.raises(KeyboardInterrupt):
            execute_runs([request()], retry=FAST_RETRY, faults=plan,
                         simulate=lambda req, fault: _StubRun())

    def test_on_outcome_called_per_request(self):
        seen = []
        execute_runs([request(), request(scheme="tsb")], retry=FAST_RETRY,
                     simulate=lambda req, fault: _StubRun(),
                     on_outcome=lambda outcome: seen.append(
                         outcome.request.scheme))
        assert seen == ["pom", "tsb"]


class TestCheckpointIntegration:
    def test_restored_run_skips_execution(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.jsonl"))
        run = simulate_run("gups", "pom", TINY)
        store.put(run_key("gups", "pom", TINY), run)
        calls = []
        outcomes = execute_runs([request()], retry=FAST_RETRY,
                                checkpoint=store,
                                simulate=lambda req, fault: calls.append(1))
        assert outcomes[0].restored
        assert outcomes[0].ok
        assert calls == []

    def test_success_lands_in_checkpoint(self, tmp_path):
        path = str(tmp_path / "ck.jsonl")
        store = CheckpointStore(path)
        execute_runs([request()], retry=FAST_RETRY, checkpoint=store,
                     simulate=lambda req, fault: simulate_run(
                         req.benchmark, req.scheme, req.params))
        assert run_key("gups", "pom", TINY) in CheckpointStore(path)

    def test_checkpoint_write_failure_is_warning(self, tmp_path, capsys):
        store = CheckpointStore(str(tmp_path / "ck.jsonl"),
                                faults=FaultPlan.parse("ckpt-io#1"))
        outcomes = execute_runs([request()], retry=FAST_RETRY,
                                checkpoint=store,
                                simulate=lambda req, fault: simulate_run(
                                    req.benchmark, req.scheme, req.params))
        assert outcomes[0].ok  # the campaign keeps the run either way
        assert "checkpoint write failed" in capsys.readouterr().err


class TestEvents:
    def _tracer(self):
        sink = ListSink()
        return EventTracer([sink]), sink

    def test_complete_and_retry_and_failure_events(self):
        tracer, sink = self._tracer()
        plan = FaultPlan.parse("crash@gups/pom#1,crash@gups/tsb#*")
        execute_runs([request(), request(scheme="tsb")],
                     retry=RetryPolicy(max_retries=1, base_delay_s=0.0),
                     faults=plan, tracer=tracer,
                     simulate=lambda req, fault: _StubRun())
        types = [event["type"] for event in sink.events]
        assert types.count("run_retry") == 2      # one per scheme
        assert types.count("run_complete") == 1   # pom recovered
        assert types.count("run_failure") == 1    # tsb exhausted
        failure = [e for e in sink.events if e["type"] == "run_failure"][0]
        assert failure["scheme"] == "tsb"
        assert "WorkerCrash" in failure["error"]


class TestPooled:
    def test_pooled_matches_serial_results(self):
        requests = [request("gups", "pom"), request("gcc", "baseline")]
        serial = execute_runs(requests, workers=0, retry=FAST_RETRY)
        pooled = execute_runs(requests, workers=2, retry=FAST_RETRY)
        for s, p in zip(serial, pooled):
            assert s.ok and p.ok
            assert s.run.performance == p.run.performance
            assert s.run.result.penalty_cycles == p.run.result.penalty_cycles

    def test_pooled_crash_isolated_and_reported(self):
        plan = FaultPlan.parse("crash@gups/pom#*")
        outcomes = execute_runs(
            [request("gups", "pom"), request("gcc", "baseline")],
            workers=2, retry=RetryPolicy(max_retries=0), faults=plan)
        by_scheme = {o.request.scheme: o for o in outcomes}
        assert not by_scheme["pom"].ok
        assert by_scheme["pom"].failure.error.type == "WorkerCrash"
        assert "134" in by_scheme["pom"].failure.error.message
        assert by_scheme["baseline"].ok  # the other run is unharmed

    def test_pooled_hang_reaped_by_timeout(self):
        plan = FaultPlan.parse("hang@gups/pom#*")
        outcomes = execute_runs([request("gups", "pom")], workers=2,
                                timeout_s=0.5,
                                retry=RetryPolicy(max_retries=0),
                                faults=plan)
        assert not outcomes[0].ok
        assert outcomes[0].failure.error.type == "RunTimeout"


class _RecordingTelemetry:
    """Records every executor hook call; enabled so gates stay open."""

    enabled = True

    def __init__(self):
        self.calls = []

    def _record(self, name):
        def hook(*args, **kwargs):
            self.calls.append((name, args, kwargs))
        return hook

    def __getattr__(self, name):
        return self._record(name)

    def of(self, name):
        return [(args, kwargs) for n, args, kwargs in self.calls
                if n == name]


class TestTelemetryHooks:
    def test_serial_lifecycle_hooks(self):
        telemetry = _RecordingTelemetry()
        execute_runs([request()], retry=FAST_RETRY,
                     simulate=lambda req, fault: _StubRun(),
                     telemetry=telemetry)
        names = [name for name, _, _ in telemetry.calls]
        assert names[0] == "run_queued"
        assert "run_dispatched" in names
        assert "run_finished" in names
        (args, kwargs) = telemetry.of("run_finished")[0]
        assert kwargs["ok"] is True
        assert kwargs["attempts"] == 1
        assert kwargs["wall_s"] >= 0
        assert kwargs["cpu_s"] is not None  # parent-measured in serial

    def test_retry_and_failure_hooks(self):
        telemetry = _RecordingTelemetry()
        plan = FaultPlan.parse("crash@gups/pom#*")
        execute_runs([request()],
                     retry=RetryPolicy(max_retries=1, base_delay_s=0.0,
                                       jitter=0.0),
                     faults=plan, telemetry=telemetry,
                     simulate=lambda req, fault: _StubRun())
        assert len(telemetry.of("run_retry")) == 1
        (_, kwargs) = telemetry.of("run_retry")[0]
        assert "WorkerCrash" in kwargs["error"]
        (_, kwargs) = telemetry.of("run_finished")[0]
        assert kwargs["ok"] is False
        assert "WorkerCrash" in kwargs["error"]

    def test_restored_run_hook(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.jsonl"))
        run = simulate_run("gups", "pom", TINY)
        store.put(run_key("gups", "pom", TINY), run)
        telemetry = _RecordingTelemetry()
        execute_runs([request()], retry=FAST_RETRY, checkpoint=store,
                     telemetry=telemetry)
        names = [name for name, _, _ in telemetry.calls]
        assert "run_restored" in names
        assert "run_dispatched" not in names

    def test_checkpoint_write_hook(self, tmp_path):
        store = CheckpointStore(str(tmp_path / "ck.jsonl"))
        telemetry = _RecordingTelemetry()
        execute_runs([request()], retry=FAST_RETRY, checkpoint=store,
                     telemetry=telemetry,
                     simulate=lambda req, fault: simulate_run(
                         req.benchmark, req.scheme, req.params))
        assert telemetry.of("checkpoint_write") == [((), {"ok": True})]

    def test_pooled_measurements_ride_the_result_pipe(self):
        telemetry = _RecordingTelemetry()
        outcomes = execute_runs([request()], workers=2, retry=FAST_RETRY,
                                telemetry=telemetry)
        assert outcomes[0].ok
        (_, kwargs) = telemetry.of("run_finished")[0]
        assert kwargs["ok"] is True
        assert kwargs["wall_s"] > 0        # measured inside the worker
        assert kwargs["cpu_s"] is not None
        assert kwargs["workload_source"] is not None
        (_, kwargs) = telemetry.of("run_dispatched")[0]
        assert kwargs["mode"] == "pool"

    def test_null_telemetry_default_records_nothing(self):
        # The default path must not even look up hook attributes.
        from repro.obs import NO_TELEMETRY
        outcomes = execute_runs([request()], retry=FAST_RETRY,
                                simulate=lambda req, fault: _StubRun(),
                                telemetry=NO_TELEMETRY)
        assert outcomes[0].ok
